// Package term implements distributed termination detection for the
// work-stealing runtime.
//
// The reference UTS implementation detects termination with a
// token-ring algorithm ("such condition is detected by a token-ring
// distributed termination algorithm", paper §II-A). Two detectors are
// provided:
//
//   - Safra's algorithm (the default): a colored token carrying a
//     message count circulates the ring; it is provably correct in the
//     presence of in-flight work messages, which matters because work
//     transfers here have real latencies.
//   - A Dijkstra-style color ring without message counting, matching
//     the reference implementation's simpler scheme. With delayed
//     messages this classic ring can in principle declare termination
//     while a work message is in flight; the engine cross-checks every
//     detection against its global oracle and counts such events, and
//     the ablation benches compare both detectors' overhead.
//
// Detectors are passive state machines: the engine tells them about
// rank idleness, work-message traffic and token arrivals, and they
// answer with tokens to forward and, eventually, a termination verdict.
// They never communicate on their own, which keeps them independent of
// the transport and directly unit-testable.
package term

import "fmt"

// Color of a rank or token.
type Color uint8

// Token and rank colors.
const (
	White Color = iota
	Black
)

func (c Color) String() string {
	if c == Black {
		return "black"
	}
	return "white"
}

// Token is the message circulated on the ring. Engines treat it as an
// opaque payload.
type Token struct {
	Color Color
	// Count is Safra's accumulated message counter; unused by the ring
	// detector.
	Count int64
	// Round numbers the detection rounds, for tracing.
	Round int
}

// TokenBytes is the modeled wire size of a token message.
const TokenBytes = 16

// Send instructs the engine to forward a token.
type Send struct {
	To    int
	Token Token
}

// Detector is the engine-facing interface of a termination detector.
//
// Contract: the engine must call WorkSent/WorkReceived for every
// work-carrying message, OnIdle(rank) whenever rank transitions to
// idle, and OnToken when a token message arrives, passing the rank's
// current idleness. Returned Sends must be delivered as token messages.
// After Terminated returns true no further calls are made.
type Detector interface {
	Name() string
	// WorkSent records that rank sent one work message.
	WorkSent(rank int)
	// WorkReceived records that rank received one work message.
	WorkReceived(rank int)
	// OnIdle notifies that rank is now idle; returns tokens to send.
	OnIdle(rank int) []Send
	// OnToken delivers a token to rank; idle reports the rank's current
	// scheduling state. Returns tokens to send.
	OnToken(rank int, tok Token, idle bool) []Send
	// Terminated reports whether global termination was detected.
	Terminated() bool
	// Rounds returns the number of completed token rounds.
	Rounds() int
}

// ---------------------------------------------------------------------
// Safra's algorithm

type safra struct {
	n          int
	color      []Color
	count      []int64
	pending    []bool // rank holds the token, waiting to go idle
	pendingTok []Token
	started    bool
	terminated bool
	round      int
}

// NewSafra returns Safra's termination detector for n ranks. Rank 0
// initiates the first round when it first becomes idle.
func NewSafra(n int) Detector {
	if n < 1 {
		panic(fmt.Sprintf("term: detector for %d ranks", n))
	}
	return &safra{
		n:          n,
		color:      make([]Color, n),
		count:      make([]int64, n),
		pending:    make([]bool, n),
		pendingTok: make([]Token, n),
	}
}

func (s *safra) Name() string { return "Safra" }

func (s *safra) WorkSent(rank int) { s.count[rank]++ }

func (s *safra) WorkReceived(rank int) {
	s.count[rank]--
	s.color[rank] = Black
}

func (s *safra) OnIdle(rank int) []Send {
	if s.terminated {
		return nil
	}
	if rank == 0 && !s.started {
		// Initiate the first round.
		s.started = true
		return s.emitFrom0()
	}
	if s.pending[rank] {
		s.pending[rank] = false
		return s.forward(rank, s.pendingTok[rank])
	}
	return nil
}

func (s *safra) OnToken(rank int, tok Token, idle bool) []Send {
	if s.terminated {
		return nil
	}
	if !idle {
		s.pending[rank] = true
		s.pendingTok[rank] = tok
		return nil
	}
	return s.forward(rank, tok)
}

func (s *safra) forward(rank int, tok Token) []Send {
	if rank == 0 {
		// Round complete: decide or start over.
		s.round++
		if tok.Color == White && s.color[0] == White && tok.Count+s.count[0] == 0 {
			s.terminated = true
			return nil
		}
		return s.emitFrom0()
	}
	tok.Count += s.count[rank]
	if s.color[rank] == Black {
		tok.Color = Black
	}
	s.color[rank] = White
	return []Send{{To: (rank + 1) % s.n, Token: tok}}
}

func (s *safra) emitFrom0() []Send {
	s.color[0] = White
	if s.n == 1 {
		// Degenerate ring: decide immediately.
		s.round++
		if s.count[0] == 0 {
			s.terminated = true
		}
		return nil
	}
	// The token starts at zero; rank 0's own counter joins the test
	// only when the token returns (q + c_0 == 0).
	return []Send{{To: 1, Token: Token{Color: White, Count: 0, Round: s.round}}}
}

func (s *safra) Terminated() bool { return s.terminated }
func (s *safra) Rounds() int      { return s.round }

// ---------------------------------------------------------------------
// Dijkstra-style color ring (reference-faithful)

type ring struct {
	n          int
	color      []Color // black after sending work, per Dijkstra's rule
	pending    []bool
	pendingTok []Token
	started    bool
	terminated bool
	round      int
}

// NewRing returns the classic color-token ring: a rank that sent work
// since the token last visited taints the round. It matches the
// reference UTS scheme and is cheaper than Safra (no counters), but is
// only sound when work messages are not in flight across a whole clean
// token round; the engine verifies detections against its oracle.
func NewRing(n int) Detector {
	if n < 1 {
		panic(fmt.Sprintf("term: detector for %d ranks", n))
	}
	return &ring{
		n:          n,
		color:      make([]Color, n),
		pending:    make([]bool, n),
		pendingTok: make([]Token, n),
	}
}

func (r *ring) Name() string { return "Ring" }

func (r *ring) WorkSent(rank int) { r.color[rank] = Black }

func (r *ring) WorkReceived(rank int) { r.color[rank] = Black }

func (r *ring) OnIdle(rank int) []Send {
	if r.terminated {
		return nil
	}
	if rank == 0 && !r.started {
		r.started = true
		return r.emitFrom0()
	}
	if r.pending[rank] {
		r.pending[rank] = false
		return r.forward(rank, r.pendingTok[rank])
	}
	return nil
}

func (r *ring) OnToken(rank int, tok Token, idle bool) []Send {
	if r.terminated {
		return nil
	}
	if !idle {
		r.pending[rank] = true
		r.pendingTok[rank] = tok
		return nil
	}
	return r.forward(rank, tok)
}

func (r *ring) forward(rank int, tok Token) []Send {
	if rank == 0 {
		r.round++
		if tok.Color == White && r.color[0] == White {
			r.terminated = true
			return nil
		}
		return r.emitFrom0()
	}
	if r.color[rank] == Black {
		tok.Color = Black
	}
	r.color[rank] = White
	return []Send{{To: (rank + 1) % r.n, Token: tok}}
}

func (r *ring) emitFrom0() []Send {
	r.color[0] = White
	if r.n == 1 {
		r.round++
		r.terminated = true
		return nil
	}
	return []Send{{To: 1, Token: Token{Color: White, Round: r.round}}}
}

func (r *ring) Terminated() bool { return r.terminated }
func (r *ring) Rounds() int      { return r.round }

// ---------------------------------------------------------------------

// Factory constructs a detector for n ranks.
type Factory func(n int) Detector

// Detectors is the registry of detector factories by name.
var Detectors = map[string]Factory{
	"Safra": NewSafra,
	"Ring":  NewRing,
}
