package term

import "testing"

// driveTokenTo walks the sends until the token is delivered to `to`
// with the given idleness, returning the follow-up sends.
func deliverChain(t *testing.T, d Detector, sends []Send, to int, idleAt func(int) bool) []Send {
	t.Helper()
	for len(sends) > 0 {
		s := sends[0]
		if len(sends) != 1 {
			t.Fatalf("expected a single token in flight, got %d", len(sends))
		}
		if s.To == to {
			return d.OnToken(s.To, s.Token, idleAt(s.To))
		}
		sends = d.OnToken(s.To, s.Token, idleAt(s.To))
	}
	t.Fatalf("token never reached rank %d", to)
	return nil
}

// TestIdleDecisionPossible drives both detectors through the states the
// sharded engine's serialization policy distinguishes: no parked token
// at the initiator (parallel OK), a white token parked at a white
// initiator (must serialize — the next OnIdle may decide), and a parked
// token already ruled out by color (parallel OK, and OnIdle must indeed
// not decide).
func TestIdleDecisionPossible(t *testing.T) {
	for _, mk := range []struct {
		name string
		f    Factory
	}{{"Safra", NewSafra}, {"Ring", NewRing}} {
		t.Run(mk.name, func(t *testing.T) {
			d := mk.f(3)
			da := d.(DecisionAware)
			if da.IdleDecisionPossible(0) {
				t.Fatal("decision possible before the first round started")
			}
			if da.IdleDecisionPossible(1) {
				t.Fatal("decision reported possible at a non-initiator")
			}

			// Round 1: everyone idle; the token returns to a busy
			// initiator and parks. White token, white initiator: the
			// engine must serialize until it releases.
			sends := d.OnIdle(0)
			sends = deliverChain(t, d, sends, 0, func(r int) bool { return r != 0 })
			if len(sends) != 0 {
				t.Fatalf("parked token produced sends %v", sends)
			}
			if !da.IdleDecisionPossible(0) {
				t.Fatal("white token parked at white initiator: decision must be flagged possible")
			}
			if d.OnIdle(0); !d.Terminated() {
				t.Fatal("release did not decide termination (sanity: flag was not conservative here)")
			}
			if da.IdleDecisionPossible(0) {
				t.Fatal("decision still flagged after termination")
			}
		})
	}
}

// TestIdleDecisionRuledOutByColor pins the negative case the policy
// relies on for speed: a parked token at an initiator tainted black
// cannot decide, and the flag says so.
func TestIdleDecisionRuledOutByColor(t *testing.T) {
	for _, mk := range []struct {
		name string
		f    Factory
	}{{"Safra", NewSafra}, {"Ring", NewRing}} {
		t.Run(mk.name, func(t *testing.T) {
			d := mk.f(3)
			da := d.(DecisionAware)
			sends := d.OnIdle(0)
			// Work traffic taints the initiator before the token returns.
			d.WorkSent(1)
			d.WorkReceived(0)
			sends = deliverChain(t, d, sends, 0, func(r int) bool { return r != 0 })
			if len(sends) != 0 {
				t.Fatalf("parked token produced sends %v", sends)
			}
			if da.IdleDecisionPossible(0) {
				t.Fatal("black initiator flagged as possibly deciding")
			}
			if d.OnIdle(0); d.Terminated() {
				t.Fatal("tainted round decided termination (flag soundness check broken)")
			}
		})
	}
}
