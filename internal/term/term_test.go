package term

import (
	"testing"
	"testing/quick"

	"distws/internal/rng"
)

// pumpQueue delivers queued token sends until quiescent or a step
// budget is exhausted, returning any undelivered sends. idle reports
// each rank's state at delivery time.
func pumpQueue(d Detector, sends []Send, idle func(rank int) bool, maxSteps int) []Send {
	queue := append([]Send(nil), sends...)
	for steps := 0; len(queue) > 0 && steps < maxSteps; steps++ {
		s := queue[0]
		queue = queue[1:]
		queue = append(queue, d.OnToken(s.To, s.Token, idle(s.To))...)
	}
	return queue
}

// pump is pumpQueue discarding leftovers; reports whether it settled.
func pump(d Detector, sends []Send, idle func(rank int) bool, maxSteps int) bool {
	return len(pumpQueue(d, sends, idle, maxSteps)) == 0
}

func TestDetectorsTerminateWhenAllIdle(t *testing.T) {
	for name, factory := range Detectors {
		for _, n := range []int{1, 2, 3, 8, 64} {
			d := factory(n)
			allIdle := func(int) bool { return true }
			var sends []Send
			for rank := 0; rank < n; rank++ {
				sends = append(sends, d.OnIdle(rank)...)
			}
			if !pump(d, sends, allIdle, 10*n+10) {
				t.Fatalf("%s n=%d: token never settled", name, n)
			}
			if !d.Terminated() {
				t.Fatalf("%s n=%d: no termination with all ranks idle", name, n)
			}
			if d.Rounds() < 1 {
				t.Fatalf("%s n=%d: %d rounds", name, n, d.Rounds())
			}
		}
	}
}

func TestNoTerminationWhileActive(t *testing.T) {
	for name, factory := range Detectors {
		d := factory(4)
		busy := map[int]bool{2: true}
		idle := func(r int) bool { return !busy[r] }
		sends := d.OnIdle(0)
		// Token reaches rank 2 and parks there; no termination.
		pump(d, sends, idle, 100)
		if d.Terminated() {
			t.Fatalf("%s: terminated while rank 2 active", name)
		}
		// Rank 2 goes idle: round completes (and possibly more rounds).
		sends = d.OnIdle(2)
		busy[2] = false
		if !pump(d, sends, idle, 100) {
			t.Fatalf("%s: token stuck after rank 2 idled", name)
		}
		if !d.Terminated() {
			t.Fatalf("%s: no termination after all idle", name)
		}
	}
}

func TestSafraInFlightMessageBlocksTermination(t *testing.T) {
	// Rank 1 sent a work message that rank 3 has not received yet.
	// Safra must NOT terminate until the receive is recorded.
	d := NewSafra(4)
	d.WorkSent(1)
	allIdle := func(int) bool { return true }
	var sends []Send
	for rank := 0; rank < 4; rank++ {
		sends = append(sends, d.OnIdle(rank)...)
	}
	leftover := pumpQueue(d, sends, allIdle, 200)
	if d.Terminated() {
		t.Fatal("Safra terminated with message count nonzero")
	}
	if len(leftover) == 0 {
		t.Fatal("token stopped circulating with an undelivered work message")
	}
	// Deliver the message; the still-circulating token must now settle
	// into termination within a few rounds.
	d.WorkReceived(3)
	if !pump(d, leftover, allIdle, 500) {
		t.Fatal("token never settled after delivery")
	}
	if !d.Terminated() {
		t.Fatal("Safra did not terminate after message delivered")
	}
}

func TestSafraBalancedTrafficTerminates(t *testing.T) {
	d := NewSafra(3)
	// A balanced exchange: 0 -> 1 and 1 -> 2 work messages, delivered.
	d.WorkSent(0)
	d.WorkReceived(1)
	d.WorkSent(1)
	d.WorkReceived(2)
	allIdle := func(int) bool { return true }
	var sends []Send
	for rank := 0; rank < 3; rank++ {
		sends = append(sends, d.OnIdle(rank)...)
	}
	if !pump(d, sends, allIdle, 300) {
		t.Fatal("token never settled")
	}
	if !d.Terminated() {
		t.Fatal("no termination despite balanced traffic")
	}
	// Receivers were black, so at least two rounds were needed.
	if d.Rounds() < 2 {
		t.Fatalf("terminated in %d rounds; black receivers must force a second round", d.Rounds())
	}
}

func TestTokenParksOnActiveRank(t *testing.T) {
	for name, factory := range Detectors {
		d := factory(3)
		sends := d.OnIdle(0)
		if len(sends) != 1 || sends[0].To != 1 {
			t.Fatalf("%s: rank 0 emitted %v", name, sends)
		}
		// Deliver to busy rank 1: token parks.
		out := d.OnToken(1, sends[0].Token, false)
		if len(out) != 0 {
			t.Fatalf("%s: busy rank forwarded token", name)
		}
		// Rank 1 goes idle: token moves on.
		out = d.OnIdle(1)
		if len(out) != 1 || out[0].To != 2 {
			t.Fatalf("%s: parked token not released: %v", name, out)
		}
	}
}

func TestNoCallsAfterTermination(t *testing.T) {
	for name, factory := range Detectors {
		d := factory(2)
		allIdle := func(int) bool { return true }
		sends := append(d.OnIdle(0), d.OnIdle(1)...)
		pump(d, sends, allIdle, 100)
		if !d.Terminated() {
			t.Fatalf("%s: setup failed", name)
		}
		if out := d.OnIdle(0); len(out) != 0 {
			t.Fatalf("%s: emitted after termination", name)
		}
		if out := d.OnToken(1, Token{}, true); len(out) != 0 {
			t.Fatalf("%s: forwarded after termination", name)
		}
	}
}

func TestNewPanicsOnZeroRanks(t *testing.T) {
	for name, factory := range Detectors {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic for 0 ranks", name)
				}
			}()
			factory(0)
		}()
	}
}

// Property (Safra safety): under randomized traffic where every sent
// message is eventually received, Safra terminates only after all
// messages are delivered, and does terminate once they are.
func TestPropertySafraSafeAndLive(t *testing.T) {
	f := func(seed uint64, nRaw uint8, traffic []uint8) bool {
		n := int(nRaw%8) + 2
		d := NewSafra(n)
		r := rng.New(seed)
		// Random delivered message pairs.
		inFlight := 0
		for _, tr := range traffic {
			from := int(tr) % n
			to := (from + 1 + r.Intn(n-1)) % n
			d.WorkSent(from)
			if r.Intn(4) != 0 {
				d.WorkReceived(to)
			} else {
				inFlight++
			}
		}
		allIdle := func(int) bool { return true }
		var sends []Send
		for rank := 0; rank < n; rank++ {
			sends = append(sends, d.OnIdle(rank)...)
		}
		// Bounded pumping: with in-flight messages Safra must never
		// terminate (the token just keeps circulating); once every
		// message is delivered it must terminate within a few rounds.
		pump(d, sends, allIdle, 50*n+100)
		if inFlight > 0 {
			return !d.Terminated()
		}
		return d.Terminated()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNamesAndColors(t *testing.T) {
	if NewSafra(2).Name() != "Safra" || NewRing(2).Name() != "Ring" {
		t.Fatal("detector names")
	}
	if White.String() != "white" || Black.String() != "black" {
		t.Fatal("color names")
	}
}

func TestRingWorkTaintsRound(t *testing.T) {
	// A rank that sent or received work since the last token visit
	// taints the round: the first circulation must not terminate.
	d := NewRing(3)
	d.WorkSent(1)
	d.WorkReceived(2)
	allIdle := func(int) bool { return true }
	sends := d.OnIdle(0)
	// One full round: 0 -> 1 -> 2 -> 0. Deliver exactly 3 hops.
	for hop := 0; hop < 3 && len(sends) > 0; hop++ {
		s := sends[0]
		sends = d.OnToken(s.To, s.Token, allIdle(s.To))
	}
	if d.Terminated() {
		t.Fatal("ring terminated on a tainted round")
	}
	// The second, clean round terminates.
	if !pump(d, sends, allIdle, 20) {
		t.Fatal("token stuck")
	}
	if !d.Terminated() {
		t.Fatal("ring did not terminate after a clean round")
	}
	if d.Rounds() < 2 {
		t.Fatalf("rounds = %d, want >= 2", d.Rounds())
	}
}
