package term

import "testing"

// Edge cases for ring healing under fail-stop rank removal. Both
// detectors must route around dead ranks, regenerate tokens lost with
// a crash, and drop stale tokens from abandoned rounds.

func TestRemoveTokenHolder(t *testing.T) {
	for name, factory := range Detectors {
		d := factory(5)
		busy := map[int]bool{2: true}
		idle := func(r int) bool { return !busy[r] }
		var sends []Send
		for rank := 0; rank < 5; rank++ {
			sends = append(sends, d.OnIdle(rank)...)
		}
		// The token parks on busy rank 2 and the ring stalls.
		if left := pumpQueue(d, sends, idle, 100); len(left) != 0 {
			t.Fatalf("%s: token did not park on the busy rank: %v", name, left)
		}
		if d.Terminated() {
			t.Fatalf("%s: terminated while rank 2 active", name)
		}
		// Rank 2 dies holding the token: the initiator must regenerate.
		regen := d.RemoveRank(2, true)
		if len(regen) != 1 || regen[0].From != 0 || !regen[0].Regen {
			t.Fatalf("%s: no regenerated token from the initiator: %v", name, regen)
		}
		if regen[0].To == 2 {
			t.Fatalf("%s: regenerated token routed to the dead rank", name)
		}
		if !pump(d, regen, idle, 100) {
			t.Fatalf("%s: regenerated token never settled", name)
		}
		if !d.Terminated() {
			t.Fatalf("%s: no termination after healing around the token holder", name)
		}
	}
}

func TestRemoveRankZeroBeforeStart(t *testing.T) {
	for name, factory := range Detectors {
		d := factory(4)
		// Rank 0 dies before any round starts: nothing to regenerate,
		// and the initiator role falls to rank 1.
		if out := d.RemoveRank(0, true); len(out) != 0 {
			t.Fatalf("%s: regenerated a token before the first round: %v", name, out)
		}
		allIdle := func(int) bool { return true }
		var sends []Send
		for rank := 1; rank < 4; rank++ {
			sends = append(sends, d.OnIdle(rank)...)
		}
		if len(sends) == 0 || sends[0].From != 1 {
			t.Fatalf("%s: rank 1 did not take over initiation: %v", name, sends)
		}
		if !pump(d, sends, allIdle, 100) {
			t.Fatalf("%s: token never settled", name)
		}
		if !d.Terminated() {
			t.Fatalf("%s: no termination with rank 0 dead", name)
		}
	}
}

func TestRemoveRankZeroMidRound(t *testing.T) {
	for name, factory := range Detectors {
		d := factory(4)
		busy := map[int]bool{3: true}
		idle := func(r int) bool { return !busy[r] }
		sends := d.OnIdle(0)
		pumpQueue(d, sends, idle, 100) // token parks on rank 3
		// The sitting initiator dies; rank 1 inherits the role and, being
		// idle, restarts the round immediately.
		regen := d.RemoveRank(0, true)
		if len(regen) != 1 || regen[0].From != 1 {
			t.Fatalf("%s: rank 1 did not regenerate after rank 0 died: %v", name, regen)
		}
		busy[3] = false
		sends = append(regen, d.OnIdle(3)...)
		if !pump(d, sends, idle, 100) {
			t.Fatalf("%s: token never settled", name)
		}
		if !d.Terminated() {
			t.Fatalf("%s: no termination after initiator crash", name)
		}
	}
}

func TestAllButOneCrashed(t *testing.T) {
	for name, factory := range Detectors {
		d := factory(6)
		for rank := 0; rank < 5; rank++ {
			d.RemoveRank(rank, true)
		}
		if d.Terminated() {
			t.Fatalf("%s: terminated while the survivor never reported idle", name)
		}
		if out := d.OnIdle(5); len(out) != 0 {
			t.Fatalf("%s: lone survivor emitted a token: %v", name, out)
		}
		if !d.Terminated() {
			t.Fatalf("%s: lone idle survivor did not terminate", name)
		}
	}
}

// TestSafraCountTransferChain walks a count balance through a chain of
// crashes: each removal must transfer the dead rank's balance to the
// (possibly also later-crashing) initiator, and a WorkLost with a dead
// sender must resolve against the final holder.
func TestSafraCountTransferChain(t *testing.T) {
	d := NewSafra(6)
	d.WorkSent(3) // rank 3 has one unresolved work message in flight
	for rank := 0; rank < 5; rank++ {
		d.RemoveRank(rank, true)
	}
	// The survivor inherited the +1 balance: no termination yet.
	if out := d.OnIdle(5); len(out) != 0 {
		t.Fatalf("lone survivor emitted a token: %v", out)
	}
	if d.Terminated() {
		t.Fatal("Safra terminated with an unresolved in-flight message")
	}
	// The message is finally lost (its sender is long dead); the balance
	// resolves against the initiator and the survivor may terminate.
	d.WorkLost(3)
	d.OnIdle(5)
	if !d.Terminated() {
		t.Fatal("Safra did not terminate after the lost message resolved")
	}
}

func TestRemoveAfterTermination(t *testing.T) {
	for name, factory := range Detectors {
		d := factory(2)
		allIdle := func(int) bool { return true }
		sends := append(d.OnIdle(0), d.OnIdle(1)...)
		pump(d, sends, allIdle, 100)
		if !d.Terminated() {
			t.Fatalf("%s: setup failed", name)
		}
		if out := d.RemoveRank(1, true); len(out) != 0 {
			t.Fatalf("%s: emitted after termination: %v", name, out)
		}
		if !d.Terminated() {
			t.Fatalf("%s: termination verdict revoked by a late crash", name)
		}
	}
}

// TestStaleTokenDropped parks a token on a busy rank, abandons the
// round with an unrelated crash, and checks the parked token is
// discarded by round number when its holder finally idles.
func TestStaleTokenDropped(t *testing.T) {
	for name, factory := range Detectors {
		d := factory(4)
		busy := map[int]bool{3: true}
		idle := func(r int) bool { return !busy[r] }
		pumpQueue(d, d.OnIdle(0), idle, 100) // token parks on rank 3
		regen := d.RemoveRank(1, true)
		if len(regen) != 1 || regen[0].To != 2 {
			t.Fatalf("%s: regenerated token did not skip the dead rank: %v", name, regen)
		}
		busy[3] = false
		out := d.OnIdle(3)
		if d.Terminated() {
			t.Fatalf("%s: stale token decided a round", name)
		}
		// The parked token was stale: releasing it must either drop it
		// outright or feed the current round, never fork a second token.
		sends := append(regen, out...)
		if !pump(d, sends, idle, 100) {
			t.Fatalf("%s: token never settled", name)
		}
		if !d.Terminated() {
			t.Fatalf("%s: no termination after stale token dropped", name)
		}
	}
}
