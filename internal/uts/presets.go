package uts

import "sort"

// PresetInfo describes a named tree preset.
type PresetInfo struct {
	Name   string
	Params Params
	// PaperSize is the node count the paper's Table I reports for this
	// tree, when it is one of the paper's trees; 0 otherwise. Our SHA-1
	// stream is BRG-style but not bit-compatible with the reference C
	// implementation, so realized sizes differ; EXPERIMENTS.md records
	// the measured sizes.
	PaperSize uint64
	// Comment explains the preset's role in the reproduction.
	Comment string
}

// presets is the registry of named trees.
//
// The paper's trees (Table I) are enormous: T3XXL has 2.8e9 nodes and
// T3WL 1.6e11. Searching them sequentially takes hours to days even
// natively; inside a simulator they are out of reach. The scaled
// variants keep the exact generative structure (binomial, root fan-out
// b=2000, m=2) and shrink the expected size 1 + b/(1-mq) by moving q
// away from the critical point 1/2. The heavy-tailed subtree-size
// distribution that stresses the load balancer is preserved.
var presets = map[string]PresetInfo{
	"T1": {
		Name: "T1",
		Params: Params{
			Type: Geometric, RootSeed: 19, B0: 4, GenMax: 10, Shape: ShapeLinear,
		},
		Comment: "standard UTS geometric tree (small); used for generator tests",
	},
	"T3": {
		Name: "T3",
		Params: Params{
			Type: Binomial, RootSeed: 42, B0: 2000, NonLeafBF: 2, NonLeafProb: 0.124875,
		},
		Comment: "binomial tree with ~2285 expected nodes; unit-test scale",
	},
	"T3XXL": {
		Name: "T3XXL",
		Params: Params{
			Type: Binomial, RootSeed: 316, B0: 2000, NonLeafBF: 2, NonLeafProb: 0.499995,
		},
		PaperSize: 2793220501,
		Comment:   "paper Table I; used by Figure 2 on the K Computer. Too large to run here; see T3S/T3M.",
	},
	"T3WL": {
		Name: "T3WL",
		Params: Params{
			Type: Binomial, RootSeed: 559, B0: 2000, NonLeafBF: 2, NonLeafProb: 0.4999995,
		},
		PaperSize: 157063495159,
		Comment:   "paper Table I; used by Figures 3-15. Too large to run here; see T3L.",
	},
	"T3S": {
		Name: "T3S",
		Params: Params{
			Type: Binomial, RootSeed: 316, B0: 2000, NonLeafBF: 2, NonLeafProb: 0.49,
		},
		Comment: "scaled T3XXL stand-in, expected ~1e5 nodes; experiments at 8-128 ranks",
	},
	"T3M": {
		Name: "T3M",
		Params: Params{
			Type: Binomial, RootSeed: 316, B0: 2000, NonLeafBF: 2, NonLeafProb: 0.499,
		},
		Comment: "scaled tree, expected ~1e6 nodes; mid-scale experiments",
	},
	"T3L": {
		Name: "T3L",
		Params: Params{
			Type: Binomial, RootSeed: 559, B0: 2000, NonLeafBF: 2, NonLeafProb: 0.4998,
		},
		Comment: "scaled T3WL stand-in, expected ~5e6 nodes; experiments at 1024-8192 ranks",
	},
	"T3XL": {
		Name: "T3XL",
		Params: Params{
			Type: Binomial, RootSeed: 1, B0: 2000, NonLeafBF: 2, NonLeafProb: 0.49995,
		},
		Comment: "scaled tree, realized ~2.1e7 nodes; full-fidelity 8192-rank runs (slow)",
	},
	// The H-* hybrid presets drive the scaled experiments. A pure
	// binomial tree small enough to simulate cannot keep thousands of
	// ranks fed: its peak frontier grows like sqrt(size), and with the
	// UTS chunk of 20 nodes a near-critical stack is almost never
	// stealable. The hybrid presets keep the binomial imbalance the
	// paper's trees stress (m=2, q near 1/2) and use a bushy geometric
	// top to fan the frontier out without a serial root bottleneck.
	// They pair with a proportionally scaled-down chunk size of 4
	// (EXPERIMENTS.md records the calibration).
	"H-TINY": {
		Name: "H-TINY",
		Params: Params{
			Type: Hybrid, RootSeed: 1, B0: 4, Shape: ShapeFixed,
			GenMax: 4, CutoffDepth: 4,
			NonLeafBF: 2, NonLeafProb: 0.49,
		},
		Comment: "hybrid, ~20k nodes; unit tests",
	},
	"H-EVEN": {
		Name: "H-EVEN",
		Params: Params{
			Type: Hybrid, RootSeed: 99, B0: 8, Shape: ShapeFixed,
			GenMax: 6, CutoffDepth: 6,
			NonLeafBF: 2, NonLeafProb: 0.475,
		},
		Comment: "hybrid, ~5M nodes with many shallow subtrees; small-scale figures where work per rank must dwarf the drain tail (Figures 2/4)",
	},
	"H-SMALL": {
		Name: "H-SMALL",
		Params: Params{
			Type: Hybrid, RootSeed: 316, B0: 5, Shape: ShapeFixed,
			GenMax: 5, CutoffDepth: 5,
			NonLeafBF: 2, NonLeafProb: 0.49875,
		},
		Comment: "hybrid, ~1.2M nodes; Figure 2 scale (8-128 ranks)",
	},
	"H-SWEEP": {
		Name: "H-SWEEP",
		Params: Params{
			Type: Hybrid, RootSeed: 559, B0: 5, Shape: ShapeFixed,
			GenMax: 5, CutoffDepth: 5,
			NonLeafBF: 2, NonLeafProb: 0.4995,
		},
		Comment: "hybrid, ~5.9M nodes; scaled stand-in for T3WL in the 128-1024 rank sweeps",
	},
	"H-FULL": {
		Name: "H-FULL",
		Params: Params{
			Type: Hybrid, RootSeed: 559, B0: 6, Shape: ShapeFixed,
			GenMax: 6, CutoffDepth: 6,
			NonLeafBF: 2, NonLeafProb: 0.49875,
		},
		Comment: "hybrid, ~19M nodes; full-fidelity sweeps up to 2048+ ranks (slow)",
	},
	"T3L-FAST": {
		Name: "T3L-FAST",
		Params: Params{
			Type: Binomial, RootSeed: 559, B0: 2000, NonLeafBF: 2, NonLeafProb: 0.4998,
			Hash: HashFast,
		},
		Comment: "T3L with the fast hash; for smoke tests only",
	},
}

// Preset returns a named tree preset.
func Preset(name string) (PresetInfo, bool) {
	p, ok := presets[name]
	return p, ok
}

// MustPreset returns a named preset or panics; for use with names known
// at compile time.
func MustPreset(name string) PresetInfo {
	p, ok := presets[name]
	if !ok {
		panic("uts: unknown preset " + name)
	}
	return p
}

// PresetNames returns all registered preset names, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
