package uts

import "testing"

// BenchmarkUTSChildGen measures generating all children of one
// high-fanout binomial node — the inner loop of every quantum the
// engine runs (one SHA-1 chain per child).
func BenchmarkUTSChildGen(b *testing.B) {
	p := Params{Type: Binomial, RootSeed: 42, B0: 64, NonLeafBF: 8, NonLeafProb: 0.1}
	root := p.Root()
	buf := make([]Node, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.AppendChildren(buf[:0], &root)
	}
	if len(buf) != 64 {
		b.Fatalf("root has %d children, want 64", len(buf))
	}
}
