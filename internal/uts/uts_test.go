package uts

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := []Params{
		{Type: Binomial, B0: 2000, NonLeafBF: 2, NonLeafProb: 0.49},
		{Type: Geometric, B0: 4, GenMax: 10},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("valid params rejected: %+v: %v", p, err)
		}
	}
	bad := []Params{
		{Type: Binomial, B0: -1},
		{Type: Binomial, B0: 10, NonLeafBF: -1},
		{Type: Binomial, B0: 10, NonLeafBF: 2, NonLeafProb: 1.5},
		{Type: Binomial, B0: 10, NonLeafBF: 2, NonLeafProb: 0.6}, // supercritical
		{Type: Geometric, B0: 0, GenMax: 10},
		{Type: Geometric, B0: 4, GenMax: 0},
		{Type: TreeType(9)},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid params accepted: %+v", p)
		}
	}
}

func TestRootDeterministic(t *testing.T) {
	p := Params{Type: Binomial, RootSeed: 316, B0: 2000, NonLeafBF: 2, NonLeafProb: 0.49}
	a, b := p.Root(), p.Root()
	if a != b {
		t.Fatal("Root not deterministic")
	}
	p2 := p
	p2.RootSeed = 317
	if p2.Root() == a {
		t.Fatal("different seeds give identical roots")
	}
	if a.Height != 0 {
		t.Fatal("root height not 0")
	}
}

func TestChildDeterministicAndDistinct(t *testing.T) {
	p := MustPreset("T3S").Params
	root := p.Root()
	c0a := p.Child(&root, 0)
	c0b := p.Child(&root, 0)
	if c0a != c0b {
		t.Fatal("Child not deterministic")
	}
	seen := map[State]bool{}
	for i := 0; i < 100; i++ {
		c := p.Child(&root, i)
		if c.Height != 1 {
			t.Fatalf("child height %d", c.Height)
		}
		if seen[c.State] {
			t.Fatalf("duplicate child state at index %d", i)
		}
		seen[c.State] = true
	}
}

func TestGranularityChangesStateNotStructure(t *testing.T) {
	// Extra SHA rounds change child states (and thus the tree), but a
	// single tree remains internally deterministic.
	base := MustPreset("T3").Params
	g4 := base
	g4.Granularity = 4
	r1, err := CountSequential(base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CountSequential(g4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Nodes == 0 || r2.Nodes == 0 {
		t.Fatal("empty trees")
	}
	// Both are trees from the same law; both must be reproducible.
	r1b, _ := CountSequential(base)
	if r1 != r1b {
		t.Fatal("sequential count not reproducible")
	}
	root := base.Root()
	if base.Child(&root, 0) == g4.Child(&root, 0) {
		t.Fatal("granularity did not change the hash chain")
	}
}

func TestBinomialRootChildren(t *testing.T) {
	p := MustPreset("T3S").Params
	root := p.Root()
	if got := p.NumChildren(&root); got != 2000 {
		t.Fatalf("root children = %d, want 2000", got)
	}
}

func TestBinomialChildCountLaw(t *testing.T) {
	// Non-root nodes have exactly 0 or m children, with empirical
	// frequency of m close to q.
	p := MustPreset("T3M").Params
	root := p.Root()
	withChildren := 0
	const n = 2000
	for i := 0; i < n; i++ {
		c := p.Child(&root, i)
		k := p.NumChildren(&c)
		if k != 0 && k != p.NonLeafBF {
			t.Fatalf("binomial child count %d, want 0 or %d", k, p.NonLeafBF)
		}
		if k == p.NonLeafBF {
			withChildren++
		}
	}
	got := float64(withChildren) / n
	if math.Abs(got-p.NonLeafProb) > 0.05 {
		t.Fatalf("non-leaf frequency %v, want ~%v", got, p.NonLeafProb)
	}
}

func TestGeometricDepthCap(t *testing.T) {
	p := MustPreset("T1").Params
	res, err := CountSequential(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDepth > p.GenMax {
		t.Fatalf("geometric tree reached depth %d > GenMax %d", res.MaxDepth, p.GenMax)
	}
	if res.Nodes < 100 {
		t.Fatalf("T1-style tree suspiciously small: %d nodes", res.Nodes)
	}
}

func TestGeometricShapes(t *testing.T) {
	for _, shape := range []GeoShape{ShapeLinear, ShapeExpDec, ShapeCyclic, ShapeFixed} {
		p := Params{Type: Geometric, RootSeed: 7, B0: 3, GenMax: 8, Shape: shape}
		res, ok, err := CountLimited(p, 5_000_000)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if !ok {
			t.Fatalf("%v: tree exceeded safety limit", shape)
		}
		if res.Nodes == 0 {
			t.Fatalf("%v: empty tree", shape)
		}
		if res.MaxDepth > p.GenMax {
			t.Fatalf("%v: depth %d > GenMax", shape, res.MaxDepth)
		}
	}
}

func TestCountSequentialSmallTree(t *testing.T) {
	// Fully hand-checkable law: B0=3, q=0 means the root has 3 leaf
	// children: 4 nodes, 3 leaves, depth 1.
	p := Params{Type: Binomial, RootSeed: 1, B0: 3, NonLeafBF: 2, NonLeafProb: 0}
	res, err := CountSequential(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 4 || res.Leaves != 3 || res.MaxDepth != 1 {
		t.Fatalf("got %+v, want 4 nodes, 3 leaves, depth 1", res)
	}
}

func TestCountNodesVsLeavesInvariant(t *testing.T) {
	// In a binomial tree with branching m, internal non-root nodes have
	// exactly m children: nodes = 1 + B0 + m*(internal non-root), and
	// leaves + internal = nodes. Verify the derived identity
	// nodes - 1 - B0 = m * (nodes - leaves - 1) for several trees.
	for _, name := range []string{"T3", "T3S"} {
		p := MustPreset(name).Params
		res, err := CountSequential(p)
		if err != nil {
			t.Fatal(err)
		}
		lhs := res.Nodes - 1 - uint64(p.B0)
		rhs := uint64(p.NonLeafBF) * (res.Nodes - res.Leaves - 1)
		if lhs != rhs {
			t.Fatalf("%s: structural identity violated: %d != %d (%+v)", name, lhs, rhs, res)
		}
	}
}

func TestCountLimitedAborts(t *testing.T) {
	p := MustPreset("T3S").Params
	res, ok, err := CountLimited(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("limit not enforced")
	}
	if res.Nodes != 101 {
		t.Fatalf("aborted at %d nodes, want 101", res.Nodes)
	}
}

func TestExpectedSize(t *testing.T) {
	p := MustPreset("T3S").Params // q = 0.49, b = 2000
	want := 1 + 2000/(1-2*0.49)
	if got := p.ExpectedSize(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("ExpectedSize = %v, want %v", got, want)
	}
	if (Params{Type: Geometric}).ExpectedSize() != 0 {
		t.Fatal("geometric ExpectedSize should be 0 (unknown)")
	}
	super := Params{Type: Binomial, NonLeafBF: 2, NonLeafProb: 0.6}
	if !math.IsInf(super.ExpectedSize(), 1) {
		t.Fatal("supercritical ExpectedSize should be +Inf")
	}
}

func TestRealizedSizeNearExpectation(t *testing.T) {
	// The realized size of T3S should be within a factor of ~3 of its
	// 1e5 expectation (the distribution is heavy-tailed but the root
	// fan-out of 2000 concentrates the sum).
	p := MustPreset("T3S").Params
	res, err := CountSequential(p)
	if err != nil {
		t.Fatal(err)
	}
	exp := p.ExpectedSize()
	if float64(res.Nodes) < exp/3 || float64(res.Nodes) > exp*3 {
		t.Fatalf("T3S realized %d nodes vs expected %.0f — preset needs retuning", res.Nodes, exp)
	}
}

func TestFastHashMatchesLaw(t *testing.T) {
	// The fast hash must produce a different tree with the same law:
	// root children exact, non-leaf frequency close to q.
	p := MustPreset("T3M").Params
	p.Hash = HashFast
	root := p.Root()
	if got := p.NumChildren(&root); got != 2000 {
		t.Fatalf("fast-hash root children = %d", got)
	}
	withChildren := 0
	const n = 4000
	for i := 0; i < n; i++ {
		c := p.Child(&root, i)
		if p.NumChildren(&c) != 0 {
			withChildren++
		}
	}
	got := float64(withChildren) / n
	if math.Abs(got-p.NonLeafProb) > 0.05 {
		t.Fatalf("fast-hash non-leaf frequency %v, want ~%v", got, p.NonLeafProb)
	}
}

func TestAppendChildren(t *testing.T) {
	p := MustPreset("T3").Params
	root := p.Root()
	kids := p.AppendChildren(nil, &root)
	if len(kids) != p.NumChildren(&root) {
		t.Fatalf("AppendChildren returned %d, want %d", len(kids), p.NumChildren(&root))
	}
	for i, c := range kids {
		if c != p.Child(&root, i) {
			t.Fatalf("child %d mismatch", i)
		}
	}
	// Appends to an existing slice without clobbering.
	prefix := []Node{root}
	out := p.AppendChildren(prefix, &root)
	if len(out) != 1+len(kids) || out[0] != root {
		t.Fatal("AppendChildren clobbered prefix")
	}
}

func TestPresetRegistry(t *testing.T) {
	names := PresetNames()
	if len(names) < 6 {
		t.Fatalf("only %d presets", len(names))
	}
	for _, n := range names {
		info, ok := Preset(n)
		if !ok {
			t.Fatalf("PresetNames lists unknown preset %q", n)
		}
		if info.Name != n {
			t.Fatalf("preset %q has Name %q", n, info.Name)
		}
		if err := info.Params.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", n, err)
		}
	}
	if _, ok := Preset("NOPE"); ok {
		t.Fatal("unknown preset found")
	}
	// Paper trees carry their Table I sizes.
	if MustPreset("T3XXL").PaperSize != 2793220501 {
		t.Fatal("T3XXL paper size wrong")
	}
	if MustPreset("T3WL").PaperSize != 157063495159 {
		t.Fatal("T3WL paper size wrong")
	}
}

func TestMustPresetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPreset did not panic")
		}
	}()
	MustPreset("NOPE")
}

// Property: NumChildren is a pure function of the node, and children are
// insensitive to traversal history.
func TestPropertyPureGeneration(t *testing.T) {
	p := MustPreset("T3M").Params
	root := p.Root()
	f := func(idx uint16, idx2 uint8) bool {
		c := p.Child(&root, int(idx))
		n1 := p.NumChildren(&c)
		n2 := p.NumChildren(&c)
		if n1 != n2 {
			return false
		}
		if n1 > 0 {
			g1 := p.Child(&c, int(idx2)%n1)
			g2 := p.Child(&c, int(idx2)%n1)
			return g1 == g2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: rand31 values are in [0, 2^31) and toProb in [0,1).
func TestPropertyRand31Range(t *testing.T) {
	p := MustPreset("T3M").Params
	root := p.Root()
	f := func(idx uint16) bool {
		c := p.Child(&root, int(idx))
		v := rand31(&c.State)
		return v < 1<<31 && toProb(v) >= 0 && toProb(v) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkChildSHA1(b *testing.B) {
	p := MustPreset("T3L").Params
	root := p.Root()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Child(&root, i)
	}
}

func BenchmarkChildFast(b *testing.B) {
	p := MustPreset("T3L-FAST").Params
	root := p.Root()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Child(&root, i)
	}
}

func BenchmarkCountSequentialT3S(b *testing.B) {
	p := MustPreset("T3S").Params
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CountSequential(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStringers(t *testing.T) {
	cases := map[string]string{
		Binomial.String():    "Binomial",
		Geometric.String():   "Geometric",
		Hybrid.String():      "Hybrid",
		TreeType(9).String(): "TreeType(9)",
		ShapeLinear.String(): "Linear",
		ShapeExpDec.String(): "ExpDec",
		ShapeCyclic.String(): "Cyclic",
		ShapeFixed.String():  "Fixed",
		GeoShape(9).String(): "GeoShape(9)",
		HashSHA1.String():    "SHA1",
		HashFast.String():    "Fast",
		Hash(9).String():     "Hash(9)",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("stringer: got %q want %q", got, want)
		}
	}
}

func TestHybridValidate(t *testing.T) {
	good := MustPreset("H-TINY").Params
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Type: Hybrid, B0: 0, CutoffDepth: 3, GenMax: 3},
		{Type: Hybrid, B0: 4, CutoffDepth: 0, GenMax: 3},
		{Type: Hybrid, B0: 4, CutoffDepth: 5, GenMax: 3},
		{Type: Hybrid, B0: 4, CutoffDepth: 3, GenMax: 3, NonLeafBF: -1},
		{Type: Hybrid, B0: 4, CutoffDepth: 3, GenMax: 3, NonLeafBF: 2, NonLeafProb: 1.5},
		{Type: Hybrid, B0: 4, CutoffDepth: 3, GenMax: 3, NonLeafBF: 2, NonLeafProb: 0.6},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad hybrid %d accepted", i)
		}
	}
}

func TestHybridLawSwitchesAtCutoff(t *testing.T) {
	p := MustPreset("H-TINY").Params
	res, err := CountSequential(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes < 1000 {
		t.Fatalf("H-TINY too small: %d", res.Nodes)
	}
	// Above the cutoff the law is geometric (any child count possible);
	// below it, binomial: exactly 0 or m children. Walk a few levels.
	var belowCutoff []Node
	stack := []Node{p.Root()}
	for len(stack) > 0 && len(belowCutoff) < 200 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.Height >= p.CutoffDepth {
			belowCutoff = append(belowCutoff, n)
			continue
		}
		stack = p.AppendChildren(stack, &n)
	}
	if len(belowCutoff) == 0 {
		t.Fatal("no nodes below cutoff")
	}
	for _, n := range belowCutoff {
		k := p.NumChildren(&n)
		if k != 0 && k != p.NonLeafBF {
			t.Fatalf("below-cutoff node has %d children, want 0 or %d", k, p.NonLeafBF)
		}
	}
}

func TestGeometricShapeValues(t *testing.T) {
	p := Params{Type: Geometric, B0: 8, GenMax: 10}
	// Linear decreases to 0 at GenMax.
	p.Shape = ShapeLinear
	if b := p.branchFactor(0); b != 8 {
		t.Fatalf("linear b(0) = %v", b)
	}
	if b := p.branchFactor(10); b != 0 {
		t.Fatalf("linear b(GenMax) = %v", b)
	}
	// Fixed stays constant.
	p.Shape = ShapeFixed
	if p.branchFactor(0) != 8 || p.branchFactor(9) != 8 {
		t.Fatal("fixed shape varies")
	}
	// Cyclic is 0 late in the depth range.
	p.Shape = ShapeCyclic
	if b := p.branchFactor(9); b != 0 {
		t.Fatalf("cyclic b(9) = %v, want 0 beyond 5/6 depth", b)
	}
	// ExpDec decreases with depth.
	p.Shape = ShapeExpDec
	if p.branchFactor(1) <= p.branchFactor(9) {
		t.Fatal("expdec not decreasing")
	}
}

// TestChildGenMatchesChild is the exactness contract of batched child
// generation: for every tree family, hash and granularity, ChildGen
// must produce bit-identical children to per-call Params.Child,
// including when the same generator is re-staged across parents the
// way the engine reuses its per-rank generator.
func TestChildGenMatchesChild(t *testing.T) {
	params := []Params{
		{Type: Binomial, RootSeed: 19, B0: 12, NonLeafBF: 4, NonLeafProb: 0.23},
		{Type: Binomial, RootSeed: 19, B0: 12, NonLeafBF: 4, NonLeafProb: 0.23, Granularity: 3},
		{Type: Geometric, RootSeed: 42, B0: 3, GenMax: 6, Shape: ShapeLinear},
		{Type: Hybrid, RootSeed: 7, B0: 3, GenMax: 8, CutoffDepth: 3, NonLeafBF: 4, NonLeafProb: 0.2},
		{Type: Binomial, RootSeed: 19, B0: 12, NonLeafBF: 4, NonLeafProb: 0.23, Hash: HashFast},
	}
	for _, p := range params {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		var g ChildGen
		// Walk a few levels, re-staging the one generator per parent.
		frontier := []Node{p.Root()}
		for depth := 0; depth < 3 && len(frontier) > 0; depth++ {
			var next []Node
			for _, parent := range frontier {
				parent := parent
				n := g.Reset(p, &parent)
				if want := p.NumChildren(&parent); n != want || g.N() != want {
					t.Fatalf("%v: Reset returned %d children, NumChildren says %d", p.Type, n, want)
				}
				for i := 0; i < n; i++ {
					got, want := g.Child(i), p.Child(&parent, i)
					if got != want {
						t.Fatalf("%v/%v gran=%d: child %d of %v differs:\n got %v\nwant %v",
							p.Type, p.Hash, p.Granularity, i, parent, got, want)
					}
					if len(next) < 64 {
						next = append(next, got)
					}
				}
			}
			frontier = next
		}
	}
}

// TestChildGenOutOfOrder: the engine may generate children of a staged
// parent in any resumption pattern; index order must not matter.
func TestChildGenOutOfOrder(t *testing.T) {
	p := MustPreset("H-TINY").Params
	root := p.Root()
	var g ChildGen
	n := g.Reset(p, &root)
	if n < 2 {
		t.Fatalf("root has %d children, need at least 2", n)
	}
	for _, i := range []int{n - 1, 0, n / 2, 0, n - 1} {
		if got, want := g.Child(i), p.Child(&root, i); got != want {
			t.Fatalf("out-of-order child %d differs", i)
		}
	}
}
