// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Events scheduled for the same virtual time are dispatched in the order
// they were scheduled (FIFO tie-breaking via a monotonically increasing
// sequence number), which makes every simulation a pure function of its
// inputs: the same schedule of events always produces the same execution.
//
// The kernel is single-threaded by design. Simulating thousands of
// communicating ranks with goroutines would serialize on channel
// operations and lose determinism; instead each simulated entity is an
// event-driven state machine and the harness parallelizes across
// independent simulations.
//
// # Implementation
//
// The queue is an indexed 4-ary min-heap over an event arena with a
// free list: the heap orders lightweight (time, seq, slot) entries
// rather than boxed pointers, and slots are recycled in place. Scheduling never touches the garbage
// collector after warm-up: event nodes are recycled through the free
// list and callers hold generation-stamped Event handles instead of
// node pointers. Cancel is O(1) lazy deletion — it marks the node and
// lets the dispatch loop free it when it surfaces; the slot's
// generation counter makes any stale handle to a recycled slot
// harmless, so no heap back-pointers need maintaining in the sift
// loops. A 4-ary layout halves the tree depth of the binary heap and
// keeps the hot sift loops free of interface calls, which is where the
// container/heap predecessor of this kernel spent most of its time.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual timestamp.
const MaxTime = Time(math.MaxInt64)

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts a virtual duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Seconds converts a virtual timestamp to floating-point seconds since start.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3fµs", float64(d)/1e3)
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.6fs", float64(d)/1e9)
	}
}

// Event is a handle to a scheduled callback: an arena slot stamped with
// the slot's generation at scheduling time. Handles are small values,
// freely copyable, and never dangle — once the event dispatches, is
// cancelled, or its slot is recycled, the generation no longer matches
// and every operation on the stale handle is a no-op. The zero Event
// refers to nothing.
type Event struct {
	idx int32
	gen uint32
}

// eventNode is one arena slot.
type eventNode struct {
	when Time
	seq  uint64
	// Exactly one of fn / afn is set. afn carries its argument in arg,
	// letting callers schedule a preallocated function with a varying
	// pointer argument without closure allocation.
	fn  func()
	afn func(any)
	arg any
	// gen is incremented every time the slot is freed, invalidating
	// outstanding handles.
	gen       uint32
	cancelled bool
}

// heapEntry is one queue position. The sort key (when, seq) is stored
// inline so the sift loops compare contiguous heap memory instead of
// chasing arena slots — the single biggest cache effect on the hot
// path.
type heapEntry struct {
	when Time
	seq  uint64
	idx  int32
}

func entryLess(a, b heapEntry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// Kernel is a discrete-event simulation engine.
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now   Time
	arena []eventNode
	free  []int32     // recycled arena slots
	heap  []heapEntry // 4-ary min-heap ordered by (when, seq)
	// live counts queued, non-cancelled events. Cancelled nodes stay in
	// the heap until they surface, so len(heap) may exceed live.
	live       int
	seq        uint64
	dispatched uint64
	running    bool
	stopped    bool
	// Limit guards against runaway simulations. Zero means no limit.
	maxEvents uint64
	maxTime   Time
}

// NewKernel returns a kernel with the clock at zero and an empty queue.
func NewKernel() *Kernel {
	return &Kernel{maxTime: MaxTime}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Dispatched returns the number of events executed so far.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// Pending returns the number of events waiting in the queue. Cancelled
// events are not counted: they are dead weight awaiting lazy removal,
// not work the simulation will perform.
func (k *Kernel) Pending() int { return k.live }

// SetEventLimit bounds the total number of dispatched events. Run returns
// ErrEventLimit once the limit is exceeded. Zero disables the limit.
func (k *Kernel) SetEventLimit(n uint64) { k.maxEvents = n }

// SetTimeLimit bounds the virtual clock. Run returns ErrTimeLimit if an
// event beyond the deadline would be dispatched.
func (k *Kernel) SetTimeLimit(t Time) { k.maxTime = t }

// Errors reported by Run.
var (
	ErrEventLimit = errors.New("sim: event limit exceeded")
	ErrTimeLimit  = errors.New("sim: virtual time limit exceeded")
	ErrReentrant  = errors.New("sim: Run called reentrantly")
)

// alloc returns a usable arena slot index, recycling freed slots.
func (k *Kernel) alloc() int32 {
	if n := len(k.free); n > 0 {
		idx := k.free[n-1]
		k.free = k.free[:n-1]
		return idx
	}
	k.arena = append(k.arena, eventNode{gen: 1})
	return int32(len(k.arena) - 1)
}

// freeNode recycles a slot that left the heap, invalidating handles.
func (k *Kernel) freeNode(idx int32) {
	n := &k.arena[idx]
	n.gen++
	if n.gen == 0 { // generation wrap: keep 0 reserved for the zero Event
		n.gen = 1
	}
	n.fn, n.afn, n.arg = nil, nil, nil
	n.cancelled = false
	k.free = append(k.free, idx)
}

// push inserts an entry into the heap.
func (k *Kernel) push(e heapEntry) {
	k.heap = append(k.heap, e)
	k.siftUp(len(k.heap) - 1)
}

// popMin removes the heap root (callers read heap[0] first).
func (k *Kernel) popMin() {
	last := len(k.heap) - 1
	k.heap[0] = k.heap[last]
	k.heap = k.heap[:last]
	if last > 0 {
		k.siftDown(0)
	}
}

func (k *Kernel) siftUp(i int) {
	e := k.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(e, k.heap[parent]) {
			break
		}
		k.heap[i] = k.heap[parent]
		i = parent
	}
	k.heap[i] = e
}

func (k *Kernel) siftDown(i int) {
	e := k.heap[i]
	n := len(k.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if entryLess(k.heap[c], k.heap[min]) {
				min = c
			}
		}
		if !entryLess(k.heap[min], e) {
			break
		}
		k.heap[i] = k.heap[min]
		i = min
	}
	k.heap[i] = e
}

// schedule allocates, initializes and enqueues one event node.
func (k *Kernel) schedule(t Time, fn func(), afn func(any), arg any) Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, k.now))
	}
	idx := k.alloc()
	n := &k.arena[idx]
	n.when = t
	n.seq = k.seq
	n.fn, n.afn, n.arg = fn, afn, arg
	k.seq++
	k.live++
	k.push(heapEntry{when: t, seq: n.seq, idx: idx})
	return Event{idx: idx, gen: n.gen}
}

// At schedules fn to run at the absolute virtual time t. Scheduling in
// the past (t < Now) is a programming error and panics: in a
// discrete-event simulation causality violations are bugs, not
// recoverable conditions.
func (k *Kernel) At(t Time, fn func()) Event {
	return k.schedule(t, fn, nil, nil)
}

// After schedules fn to run d after the current virtual time.
func (k *Kernel) After(d Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return k.schedule(k.now.Add(d), fn, nil, nil)
}

// AtArg schedules fn(arg) at the absolute virtual time t. Unlike At, a
// caller on a hot path can reuse one fn value for many events and vary
// only the argument, avoiding a closure allocation per event. Passing a
// pointer type as arg stays allocation-free; non-pointer values may be
// boxed by the runtime.
func (k *Kernel) AtArg(t Time, fn func(any), arg any) Event {
	return k.schedule(t, nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d after the current virtual time.
func (k *Kernel) AfterArg(d Duration, fn func(any), arg any) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return k.schedule(k.now.Add(d), nil, fn, arg)
}

// node resolves a handle to its arena slot, or nil when the handle is
// stale (dispatched, cancelled, recycled) or zero.
func (k *Kernel) node(e Event) *eventNode {
	if e.gen == 0 || int(e.idx) >= len(k.arena) {
		return nil
	}
	n := &k.arena[e.idx]
	if n.gen != e.gen {
		return nil
	}
	return n
}

// Cancel marks an event so it will be skipped when its time comes; the
// queue node is reclaimed lazily when it surfaces at the heap root.
// Cancelling an already-dispatched, already-cancelled or zero Event is
// a no-op.
func (k *Kernel) Cancel(e Event) {
	n := k.node(e)
	if n == nil || n.cancelled {
		return
	}
	n.cancelled = true
	n.fn, n.afn, n.arg = nil, nil, nil
	k.live--
}

// Live reports whether e is still queued and not cancelled.
func (k *Kernel) Live(e Event) bool {
	n := k.node(e)
	return n != nil && !n.cancelled
}

// When returns the scheduled time of a live or cancelled-but-queued
// event, and false for a stale handle.
func (k *Kernel) When(e Event) (Time, bool) {
	n := k.node(e)
	if n == nil {
		return 0, false
	}
	return n.when, true
}

// Stop makes Run return after the currently executing event completes.
// Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// Run dispatches events in virtual-time order until the queue is empty,
// Stop is called, or a limit is exceeded. It returns nil on normal
// completion (queue drained or stopped).
func (k *Kernel) Run() error {
	if k.running {
		return ErrReentrant
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()

	for k.live > 0 && !k.stopped {
		idx := k.heap[0].idx
		n := &k.arena[idx]
		if n.cancelled {
			k.popMin()
			k.freeNode(idx)
			continue
		}
		if n.when > k.maxTime {
			// Leave the event queued so state remains inspectable.
			return ErrTimeLimit
		}
		if k.maxEvents != 0 && k.dispatched >= k.maxEvents {
			return ErrEventLimit
		}
		k.popMin()
		k.now = n.when
		k.dispatched++
		k.live--
		fn, afn, arg := n.fn, n.afn, n.arg
		k.freeNode(idx)
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
	}
	return nil
}

// PeekTime returns the virtual time of the next non-cancelled event and
// true, or (0, false) when the queue is empty. Cancelled nodes that have
// surfaced at the heap root are reclaimed on the way, so the call is
// amortized O(1) and semantically read-only.
func (k *Kernel) PeekTime() (Time, bool) {
	for k.live > 0 {
		idx := k.heap[0].idx
		n := &k.arena[idx]
		if n.cancelled {
			k.popMin()
			k.freeNode(idx)
			continue
		}
		return n.when, true
	}
	return 0, false
}

// RunUntil dispatches events in virtual-time order while the next event's
// time is strictly before end, then returns nil with later events left
// queued. The clock is NOT advanced to end: Now() stays at the last
// dispatched event so late-scheduled events inside a subsequent window
// remain valid. Limits behave as in Run: ErrTimeLimit when the next
// in-window event lies beyond the time limit (event left queued),
// ErrEventLimit when the dispatch budget is exhausted. RunUntil is the
// per-window building block of the sharded kernel (sim/par), which owns
// choosing end so that no cross-shard influence can arrive before it.
func (k *Kernel) RunUntil(end Time) error {
	if k.running {
		return ErrReentrant
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()

	for k.live > 0 && !k.stopped {
		idx := k.heap[0].idx
		n := &k.arena[idx]
		if n.cancelled {
			k.popMin()
			k.freeNode(idx)
			continue
		}
		if n.when >= end {
			return nil
		}
		if n.when > k.maxTime {
			return ErrTimeLimit
		}
		if k.maxEvents != 0 && k.dispatched >= k.maxEvents {
			return ErrEventLimit
		}
		k.popMin()
		k.now = n.when
		k.dispatched++
		k.live--
		fn, afn, arg := n.fn, n.afn, n.arg
		k.freeNode(idx)
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
	}
	return nil
}

// Step dispatches the next non-cancelled event, if any, and reports
// whether one was dispatched. Useful in tests for lock-step inspection.
// Step honors the same event and time limits as Run: an event that Run
// would refuse to dispatch makes Step return false without dispatching.
func (k *Kernel) Step() bool {
	for k.live > 0 {
		idx := k.heap[0].idx
		n := &k.arena[idx]
		if n.cancelled {
			k.popMin()
			k.freeNode(idx)
			continue
		}
		if n.when > k.maxTime {
			return false
		}
		if k.maxEvents != 0 && k.dispatched >= k.maxEvents {
			return false
		}
		k.popMin()
		k.now = n.when
		k.dispatched++
		k.live--
		fn, afn, arg := n.fn, n.afn, n.arg
		k.freeNode(idx)
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
		return true
	}
	return false
}
