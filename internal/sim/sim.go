// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Events scheduled for the same virtual time are dispatched in the order
// they were scheduled (FIFO tie-breaking via a monotonically increasing
// sequence number), which makes every simulation a pure function of its
// inputs: the same schedule of events always produces the same execution.
//
// The kernel is single-threaded by design. Simulating thousands of
// communicating ranks with goroutines would serialize on channel
// operations and lose determinism; instead each simulated entity is an
// event-driven state machine and the harness parallelizes across
// independent simulations.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual timestamp.
const MaxTime = Time(math.MaxInt64)

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts a virtual duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Seconds converts a virtual timestamp to floating-point seconds since start.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3fµs", float64(d)/1e3)
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.6fs", float64(d)/1e9)
	}
}

// Event is a scheduled callback. The callback runs with the kernel clock
// set to the event's timestamp.
type Event struct {
	when Time
	seq  uint64
	fn   func()
	// index in the heap, or -1 when not queued. Maintained by eventHeap.
	index int
	// cancelled events stay in the heap but are skipped on dispatch;
	// this avoids O(n) removal.
	cancelled bool
}

// When returns the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation engine.
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now        Time
	queue      eventHeap
	seq        uint64
	dispatched uint64
	running    bool
	stopped    bool
	// Limit guards against runaway simulations. Zero means no limit.
	maxEvents uint64
	maxTime   Time
}

// NewKernel returns a kernel with the clock at zero and an empty queue.
func NewKernel() *Kernel {
	return &Kernel{maxTime: MaxTime}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Dispatched returns the number of events executed so far.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// Pending returns the number of events waiting in the queue, including
// cancelled events that have not yet been skipped.
func (k *Kernel) Pending() int { return len(k.queue) }

// SetEventLimit bounds the total number of dispatched events. Run returns
// ErrEventLimit once the limit is exceeded. Zero disables the limit.
func (k *Kernel) SetEventLimit(n uint64) { k.maxEvents = n }

// SetTimeLimit bounds the virtual clock. Run returns ErrTimeLimit if an
// event beyond the deadline would be dispatched.
func (k *Kernel) SetTimeLimit(t Time) { k.maxTime = t }

// Errors reported by Run.
var (
	ErrEventLimit = errors.New("sim: event limit exceeded")
	ErrTimeLimit  = errors.New("sim: virtual time limit exceeded")
	ErrReentrant  = errors.New("sim: Run called reentrantly")
)

// At schedules fn to run at the absolute virtual time t. Scheduling in
// the past (t < Now) is a programming error and panics: in a
// discrete-event simulation causality violations are bugs, not
// recoverable conditions.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, k.now))
	}
	e := &Event{when: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (k *Kernel) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return k.At(k.now.Add(d), fn)
}

// Cancel marks an event so it will be skipped when its time comes.
// Cancelling an already-dispatched or already-cancelled event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e != nil {
		e.cancelled = true
		e.fn = nil
	}
}

// Stop makes Run return after the currently executing event completes.
// Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// Run dispatches events in virtual-time order until the queue is empty,
// Stop is called, or a limit is exceeded. It returns nil on normal
// completion (queue drained or stopped).
func (k *Kernel) Run() error {
	if k.running {
		return ErrReentrant
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()

	for len(k.queue) > 0 && !k.stopped {
		e := heap.Pop(&k.queue).(*Event)
		if e.cancelled {
			continue
		}
		if e.when > k.maxTime {
			// Push back so state remains inspectable.
			heap.Push(&k.queue, e)
			return ErrTimeLimit
		}
		k.now = e.when
		k.dispatched++
		if k.maxEvents != 0 && k.dispatched > k.maxEvents {
			heap.Push(&k.queue, e)
			k.dispatched--
			return ErrEventLimit
		}
		fn := e.fn
		e.fn = nil
		fn()
	}
	return nil
}

// Step dispatches the next non-cancelled event, if any, and reports
// whether one was dispatched. Useful in tests for lock-step inspection.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.cancelled {
			continue
		}
		k.now = e.when
		k.dispatched++
		fn := e.fn
		e.fn = nil
		fn()
		return true
	}
	return false
}
