package sim

import (
	"errors"
	"testing"
)

func TestPeekTime(t *testing.T) {
	k := NewKernel()
	if _, ok := k.PeekTime(); ok {
		t.Fatal("empty kernel: PeekTime reported an event")
	}
	e5 := k.At(5, func() {})
	k.At(9, func() {})
	if tm, ok := k.PeekTime(); !ok || tm != 5 {
		t.Fatalf("PeekTime = (%d, %v), want (5, true)", tm, ok)
	}
	// Cancelling the root must make PeekTime report the next live event,
	// reclaiming the cancelled node on the way.
	k.Cancel(e5)
	if tm, ok := k.PeekTime(); !ok || tm != 9 {
		t.Fatalf("after cancel: PeekTime = (%d, %v), want (9, true)", tm, ok)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", k.Pending())
	}
}

func TestRunUntilWindowing(t *testing.T) {
	k := NewKernel()
	var fired []Time
	note := func() { fired = append(fired, k.Now()) }
	for _, tm := range []Time{3, 7, 10, 15} {
		tm := tm
		k.At(tm, note)
	}
	// Events strictly before the window end run; the boundary event does
	// not, and the clock stays at the last dispatched event.
	if err := k.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 7 {
		t.Fatalf("window [0,10): fired %v, want [3 7]", fired)
	}
	if k.Now() != 7 {
		t.Fatalf("Now = %d, want 7 (not advanced to window end)", k.Now())
	}
	// Same-window chains: an event scheduling another event inside the
	// window runs it in the same call.
	k.At(11, func() {
		note()
		k.At(12, note)
	})
	if err := k.RunUntil(13); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 5 || fired[2] != 10 || fired[3] != 11 || fired[4] != 12 {
		t.Fatalf("window [7,13): fired %v, want [... 10 11 12]", fired)
	}
	if err := k.RunUntil(MaxTime); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 6 || fired[5] != 15 {
		t.Fatalf("final window: fired %v", fired)
	}
}

func TestRunUntilHonorsLimits(t *testing.T) {
	k := NewKernel()
	k.SetTimeLimit(5)
	k.At(4, func() {})
	k.At(6, func() {})
	if err := k.RunUntil(10); !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("RunUntil = %v, want ErrTimeLimit", err)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want the over-limit event left queued", k.Pending())
	}

	k2 := NewKernel()
	k2.SetEventLimit(1)
	k2.At(1, func() {})
	k2.At(2, func() {})
	if err := k2.RunUntil(10); !errors.Is(err, ErrEventLimit) {
		t.Fatalf("RunUntil = %v, want ErrEventLimit", err)
	}
}

func TestRunUntilReentrant(t *testing.T) {
	k := NewKernel()
	var inner error
	k.At(1, func() { inner = k.RunUntil(5) })
	if err := k.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(inner, ErrReentrant) {
		t.Fatalf("nested RunUntil = %v, want ErrReentrant", inner)
	}
}

// TestRunUntilMatchesRun replays the same schedule through Run and
// through a sequence of fixed-width RunUntil windows and requires the
// identical dispatch order — the shards=1 equivalence argument for the
// windowed kernel rests on this.
func TestRunUntilMatchesRun(t *testing.T) {
	build := func(k *Kernel, log *[]Time) {
		rec := func() { *log = append(*log, k.Now()) }
		for i := 0; i < 40; i++ {
			tm := Time((i * 37) % 100)
			k.At(tm, rec)
		}
		k.At(50, func() {
			rec()
			k.At(55, rec)
			k.After(0, rec)
		})
	}
	var seq, win []Time
	ks := NewKernel()
	build(ks, &seq)
	if err := ks.Run(); err != nil {
		t.Fatal(err)
	}
	kw := NewKernel()
	build(kw, &win)
	for end := Time(7); ; end += 7 {
		if err := kw.RunUntil(end); err != nil {
			t.Fatal(err)
		}
		if kw.Pending() == 0 {
			break
		}
	}
	if len(seq) != len(win) {
		t.Fatalf("Run dispatched %d, windowed %d", len(seq), len(win))
	}
	for i := range seq {
		if seq[i] != win[i] {
			t.Fatalf("dispatch %d: Run at %d, windowed at %d", i, seq[i], win[i])
		}
	}
}
