package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	k := NewKernel()
	if err := k.Run(); err != nil {
		t.Fatalf("Run on empty kernel: %v", err)
	}
	if k.Now() != 0 {
		t.Fatalf("clock moved on empty run: %v", k.Now())
	}
	if k.Dispatched() != 0 {
		t.Fatalf("dispatched %d events on empty run", k.Dispatched())
	}
}

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("got order %v, want %v", got, want)
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(42, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-time events dispatched out of scheduling order: %v", got)
	}
	if k.Now() != 42 {
		t.Fatalf("clock = %d, want 42", k.Now())
	}
}

func TestAfterAccumulates(t *testing.T) {
	k := NewKernel()
	var times []Time
	var step func()
	step = func() {
		times = append(times, k.Now())
		if len(times) < 5 {
			k.After(7, step)
		}
	}
	k.After(7, step)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, ts := range times {
		if want := Time(7 * (i + 1)); ts != want {
			t.Fatalf("step %d at %d, want %d", i, ts, want)
		}
	}
}

func TestSchedulingInsideEvent(t *testing.T) {
	k := NewKernel()
	ran := false
	k.At(10, func() {
		// An event may schedule another event at the same timestamp;
		// it must run after the current one.
		k.At(10, func() { ran = true })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("same-time event scheduled from handler did not run")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("negative After delay did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	e := k.At(10, func() { ran = true })
	if !k.Live(e) {
		t.Fatal("Live = false for a queued event")
	}
	k.Cancel(e)
	if k.Live(e) {
		t.Fatal("Live = true after Cancel")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelZeroIsNoop(t *testing.T) {
	k := NewKernel()
	k.Cancel(Event{}) // must not panic
	if k.Live(Event{}) {
		t.Fatal("zero Event reported live")
	}
}

func TestStaleHandleIsNoop(t *testing.T) {
	k := NewKernel()
	e := k.At(10, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// e now refers to a recycled slot. Both queries and Cancel must be
	// harmless no-ops, even after the slot is reused.
	if k.Live(e) {
		t.Fatal("dispatched event reported live")
	}
	ran := false
	e2 := k.At(20, func() { ran = true })
	k.Cancel(e) // stale: must not hit e2's recycled slot
	if !k.Live(e2) {
		t.Fatal("stale Cancel killed the slot's new occupant")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event cancelled through a stale handle")
	}
	if _, ok := k.When(e2); ok {
		t.Fatal("When reported a time for a dispatched event")
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(Time(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("ran %d events after Stop at 3", count)
	}
	if k.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", k.Pending())
	}
}

func TestRunResumesAfterStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 4; i++ {
		k.At(Time(i), func() {
			count++
			if count == 2 {
				k.Stop()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("count = %d after resume, want 4", count)
	}
}

func TestEventLimit(t *testing.T) {
	k := NewKernel()
	k.SetEventLimit(5)
	var tick func()
	n := 0
	tick = func() { n++; k.After(1, tick) }
	k.After(1, tick)
	if err := k.Run(); err != ErrEventLimit {
		t.Fatalf("err = %v, want ErrEventLimit", err)
	}
	if n != 5 {
		t.Fatalf("dispatched %d, want 5", n)
	}
}

func TestTimeLimit(t *testing.T) {
	k := NewKernel()
	k.SetTimeLimit(100)
	ran200 := false
	k.At(50, func() {})
	k.At(200, func() { ran200 = true })
	if err := k.Run(); err != ErrTimeLimit {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
	if ran200 {
		t.Fatal("event beyond time limit ran")
	}
	if k.Now() != 50 {
		t.Fatalf("clock = %d, want 50", k.Now())
	}
}

func TestStep(t *testing.T) {
	k := NewKernel()
	order := []int{}
	k.At(1, func() { order = append(order, 1) })
	k.At(2, func() { order = append(order, 2) })
	if !k.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("after one step: %v", order)
	}
	if !k.Step() {
		t.Fatal("second Step returned false")
	}
	if k.Step() {
		t.Fatal("Step returned true with empty queue")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{500, "500ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	var ts Time = 100
	if ts.Add(50) != 150 {
		t.Fatal("Add")
	}
	if Time(150).Sub(ts) != 50 {
		t.Fatal("Sub")
	}
	if Duration(1500000000).Seconds() != 1.5 {
		t.Fatal("Duration.Seconds")
	}
	if Time(2500000000).Seconds() != 2.5 {
		t.Fatal("Time.Seconds")
	}
}

// Property: dispatch order is a stable sort of (time, scheduling order)
// regardless of insertion order.
func TestPropertyDispatchOrderIsSorted(t *testing.T) {
	f := func(times []uint16) bool {
		k := NewKernel()
		type stamp struct {
			at  Time
			seq int
		}
		var got []stamp
		for i, tm := range times {
			i, at := i, Time(tm)
			k.At(at, func() { got = append(got, stamp{at, i}) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset runs exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(times []uint8, mask uint64) bool {
		k := NewKernel()
		ran := make(map[int]bool)
		events := make([]Event, len(times))
		for i, tm := range times {
			i := i
			events[i] = k.At(Time(tm), func() { ran[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := range events {
			if mask&(1<<(uint(i)%64)) != 0 && i%3 == 0 {
				k.Cancel(events[i])
				cancelled[i] = true
			}
		}
		if err := k.Run(); err != nil {
			return false
		}
		for i := range times {
			if ran[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a heavy randomized schedule advances the clock monotonically.
func TestPropertyMonotonicClock(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := NewKernel()
	last := Time(-1)
	var spawn func()
	spawn = func() {
		if k.Now() < last {
			t.Fatalf("clock went backwards: %d after %d", k.Now(), last)
		}
		last = k.Now()
		if k.Dispatched() < 5000 {
			k.After(Duration(rng.Intn(100)), spawn)
			if rng.Intn(4) == 0 {
				k.After(Duration(rng.Intn(100)), spawn)
			}
		}
	}
	k.After(0, spawn)
	k.SetEventLimit(20000)
	_ = k.Run()
}

func BenchmarkKernelScheduleDispatch(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	var next func()
	n := 0
	next = func() {
		n++
		if n < b.N {
			k.After(1, next)
		}
	}
	k.After(1, next)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
