package par

import (
	"errors"
	"testing"

	"distws/internal/sim"
)

const lat = 10 * sim.Microsecond // cross-shard latency used by the test systems

// pingPong wires `shards` kernels into a ring: each shard's handler
// counts the hit and forwards to the next shard after the cross-shard
// latency, until hops messages have been delivered in total.
type pingPong struct {
	sk    *ShardedKernel
	hits  []int
	log   []sim.Time
	left  int
	order []int // shard visit order
}

func newPingPong(shards, hops int) *pingPong {
	p := &pingPong{
		sk:   New(shards, lat),
		hits: make([]int, shards),
		left: hops,
	}
	return p
}

func (p *pingPong) handler(shard int) func(any) {
	return func(any) {
		p.hits[shard]++
		p.log = append(p.log, p.sk.Kernel(shard).Now())
		p.order = append(p.order, shard)
		p.left--
		if p.left <= 0 {
			return
		}
		next := (shard + 1) % p.sk.Shards()
		now := p.sk.Kernel(shard).Now()
		p.sk.Stage(shard, next, now.Add(lat), now, shard, p.handler(next), nil)
	}
}

func TestPingPongRing(t *testing.T) {
	const hops = 50
	for _, shards := range []int{2, 3, 4} {
		p := newPingPong(shards, hops)
		// Kick off from shard 0 at t=0 via a local event that stages the
		// first cross-shard hop.
		p.sk.Kernel(0).At(0, func() { p.handler(0)(nil) })
		if err := p.sk.Run(Hooks{}); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, h := range p.hits {
			total += h
		}
		if total != hops {
			t.Fatalf("shards=%d: %d deliveries, want %d", shards, total, hops)
		}
		for i, tm := range p.log {
			if want := sim.Time(i) * sim.Time(lat); tm != want {
				t.Fatalf("shards=%d: hop %d at %v, want %v", shards, i, tm, want)
			}
		}
		st := p.sk.Stats()
		if st.Windows == 0 || st.Staged != hops-1 {
			t.Fatalf("shards=%d: stats %+v", shards, st)
		}
	}
}

// TestSerializedMatchesParallel runs the same ring once with every
// window parallel and once with every window serialized; the visit
// sequence and virtual times must be identical.
func TestSerializedMatchesParallel(t *testing.T) {
	run := func(serialize bool) *pingPong {
		p := newPingPong(4, 61)
		p.sk.Kernel(0).At(0, func() { p.handler(0)(nil) })
		hooks := Hooks{}
		if serialize {
			hooks.Serialize = func(_, _ sim.Time) bool { return true }
		}
		if err := p.sk.Run(hooks); err != nil {
			t.Fatal(err)
		}
		return p
	}
	par, ser := run(false), run(true)
	if len(par.log) != len(ser.log) {
		t.Fatalf("parallel %d hops, serialized %d", len(par.log), len(ser.log))
	}
	for i := range par.log {
		if par.log[i] != ser.log[i] || par.order[i] != ser.order[i] {
			t.Fatalf("hop %d: parallel (%v, shard %d), serialized (%v, shard %d)",
				i, par.log[i], par.order[i], ser.log[i], ser.order[i])
		}
	}
	if s := ser.sk.Stats(); s.Serialized != s.Windows {
		t.Fatalf("serialized run stats %+v", s)
	}
	if s := par.sk.Stats(); s.Serialized != 0 {
		t.Fatalf("parallel run stats %+v", s)
	}
}

// TestMergeOrderDeterministic has every shard stage a burst of messages
// to shard 0 with the same delivery instant; the delivery order must
// follow the (when, sent, sender, seq) key — i.e. sender rank order,
// then per-sender staging order — no matter how the window's goroutines
// interleave on the wall clock.
func TestMergeOrderDeterministic(t *testing.T) {
	const shards = 8
	for trial := 0; trial < 20; trial++ {
		sk := New(shards, lat)
		var got []int
		recorder := func(arg any) { got = append(got, arg.(int)) }
		for s := 0; s < shards; s++ {
			s := s
			sk.Kernel(s).At(5, func() {
				now := sk.Kernel(s).Now()
				// Two messages per shard, staged in reverse payload
				// order: same sender ⇒ staging order must be preserved.
				sk.Stage(s, 0, now.Add(lat), now, s, recorder, 2*s)
				sk.Stage(s, 0, now.Add(lat), now, s, recorder, 2*s+1)
			})
		}
		if err := sk.Run(Hooks{}); err != nil {
			t.Fatal(err)
		}
		if len(got) != 2*shards {
			t.Fatalf("delivered %d, want %d", len(got), 2*shards)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("trial %d: delivery order %v", trial, got)
			}
		}
	}
}

// TestWindowBarrierHoldsDeliveries checks conservatism: a message
// staged during a window is not visible to the destination shard until
// after the barrier, even if the destination's queue is otherwise
// empty.
func TestWindowBarrierHoldsDeliveries(t *testing.T) {
	sk := New(2, lat)
	var deliveredAt sim.Time
	sk.Kernel(0).At(3, func() {
		now := sk.Kernel(0).Now()
		sk.Stage(0, 1, now.Add(lat), now, 0, func(any) {
			deliveredAt = sk.Kernel(1).Now()
		}, nil)
	})
	if err := sk.Run(Hooks{}); err != nil {
		t.Fatal(err)
	}
	if deliveredAt != 3+sim.Time(lat) {
		t.Fatalf("delivered at %v, want %v", deliveredAt, 3+sim.Time(lat))
	}
}

func TestLookaheadViolationPanics(t *testing.T) {
	sk := New(2, lat)
	sk.Kernel(0).At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("staging a sub-lookahead delivery did not panic")
			}
			panic("stop the run") // unwind the worker; Run re-panics
		}()
		sk.Stage(0, 1, 1, 0, 0, func(any) {}, nil)
	})
	defer func() { recover() }()
	sk.Run(Hooks{})
	t.Error("Run returned normally after a lookahead violation")
}

// TestWorkerPanicPropagates checks a panic inside a shard callback
// reaches the Run caller instead of killing the process from a worker
// goroutine.
func TestWorkerPanicPropagates(t *testing.T) {
	sk := New(2, lat)
	sk.Kernel(1).At(1, func() { panic("boom") })
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	sk.Run(Hooks{})
	t.Fatal("Run returned without panicking")
}

func TestErrorPropagation(t *testing.T) {
	sk := New(2, lat)
	sk.Kernel(1).SetTimeLimit(5)
	sk.Kernel(1).At(10, func() {})
	if err := sk.Run(Hooks{}); !errors.Is(err, sim.ErrTimeLimit) {
		t.Fatalf("Run = %v, want ErrTimeLimit", err)
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { New(0, lat) },
		func() { New(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid New did not panic")
				}
			}()
			bad()
		}()
	}
}

// TestStageAllocFree gates the steady-state allocation behavior of the
// staging + barrier-merge machinery: once the queues and the merge
// scratch have grown to capacity, a stage → inject cycle performs no
// allocations.
func TestStageAllocFree(t *testing.T) {
	sk := New(4, lat)
	noop := func(any) {}
	cycle := func() {
		for s := 0; s < 4; s++ {
			now := sk.Kernel((s + 1) % 4).Now()
			for i := 0; i < 8; i++ {
				sk.Stage(s, (s+1)%4, now.Add(lat), 0, s, noop, nil)
			}
		}
		sk.injectStaged()
		for s := 0; s < 4; s++ {
			if err := sk.Kernel(s).Run(); err != nil {
				t.Fatal(err)
			}
		}
	}
	cycle() // warm up queue and scratch capacity
	if allocs := testing.AllocsPerRun(50, cycle); allocs > 0 {
		t.Fatalf("stage+merge cycle allocates %v times per window, want 0", allocs)
	}
}
