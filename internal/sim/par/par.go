// Package par runs several sim.Kernel instances in parallel under a
// conservative time-window protocol (Chandy–Misra-style lookahead).
//
// The rank set is partitioned across P shards; each shard owns one
// sequential kernel and executes its events with no synchronization
// inside a window [T, T+Δ), where T is the minimum pending event time
// across all shards and Δ (the lookahead) is a lower bound on every
// cross-shard message latency. Because no cross-shard influence can
// arrive earlier than Δ after it was sent, events inside the window are
// causally independent across shards and may run concurrently.
//
// Cross-shard sends are not delivered directly: the sender stages them
// into its shard's outbound queue (one writer per queue, so staging is
// race-free without locks), and the coordinator merges all staged
// entries at the next barrier in a deterministic total order — by
// (deliver time, send time, sender rank, per-shard staging sequence) —
// before scheduling them on the destination kernels. The merge key is
// what makes a run a pure function of (inputs, shard count): the wall
// clock interleaving of the window's goroutines can never reorder two
// staged messages.
//
// Windows the caller flags via Hooks.Serialize execute single-threaded
// on the coordinator goroutine, interleaving the shards' kernels in
// virtual-time order (ties broken by shard index). The engine uses this
// for the rare windows in which non-local decisions (termination
// detection, fail-stop crash handling) would otherwise read state that
// a concurrent shard is writing.
//
// All cross-goroutine handoff is by channel: a worker only touches its
// kernel between a window-start receive and a window-done send, and the
// coordinator only touches kernels and staging queues outside that
// span, so every access is ordered by a channel operation and the
// package needs no locks around simulation state.
package par

import (
	"fmt"
	"sort"

	"distws/internal/sim"
)

// stagedEntry is one cross-shard message awaiting barrier merge.
type stagedEntry struct {
	dst    int      // destination shard
	when   sim.Time // delivery time on the destination kernel
	sent   sim.Time // virtual instant of the send
	sender int      // sending rank, for deterministic tie-breaking
	seq    uint64   // per-source-shard staging order (totalizes the key)
	fn     func(any)
	arg    any
}

// entryKeyLess orders staged entries for injection. The key is total:
// two entries from the same sender carry distinct seq values from the
// same per-shard counter, and entries from different senders differ in
// sender. Sorting by delivery time first keeps destination-kernel
// sequence numbers aligned with delivery order; the (sent, sender)
// refinement reproduces the sequential engine's scheduling order for
// same-instant sends (rank order — the t=0 steal burst being the
// canonical case).
func entryKeyLess(a, b *stagedEntry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.sent != b.sent {
		return a.sent < b.sent
	}
	if a.sender != b.sender {
		return a.sender < b.sender
	}
	return a.seq < b.seq
}

// mergeSorter adapts the reusable merge scratch slice to sort.Interface
// without a per-barrier allocation (a *mergeSorter fits in an interface
// word).
type mergeSorter struct{ e []stagedEntry }

func (m *mergeSorter) Len() int           { return len(m.e) }
func (m *mergeSorter) Swap(i, j int)      { m.e[i], m.e[j] = m.e[j], m.e[i] }
func (m *mergeSorter) Less(i, j int) bool { return entryKeyLess(&m.e[i], &m.e[j]) }

// WindowInfo describes one barrier's window to Hooks.OnWindow.
type WindowInfo struct {
	// Start and End bound the window [Start, End); End-Start is always
	// the kernel's lookahead.
	Start, End sim.Time
	// Serialized reports the Serialize decision for this window.
	Serialized bool
	// Merged counts the staged cross-shard messages injected at the
	// barrier that opened this window.
	Merged int
	// Pairs, non-nil exactly when Merged > 0, is the src-major
	// shards×shards matrix of those messages (Pairs[src*shards+dst]).
	// It aliases coordinator-owned scratch that is reused at the next
	// barrier: callers must copy or fold it before returning.
	Pairs []uint32
}

// WallProbe observes the wall-clock shape of a Run — per-shard busy
// time versus barrier wait — without touching any virtual state. The
// coordinator calls WindowStart/WindowDone around each window; each
// worker brackets its own slice of a parallel window with
// ShardStart/ShardDone from its own goroutine, so an implementation
// must keep per-shard state in shard-owned slots (the channel
// rendezvous at the barrier orders every access, exactly as it does
// for the kernels themselves). Serialized windows run entirely on the
// coordinator and produce no ShardStart/ShardDone calls. A probe may
// read the host clock; nothing it observes can flow back into the
// simulation, so profiled runs stay bit-identical to unprofiled ones.
type WallProbe interface {
	WindowStart(start, end sim.Time, serialized bool)
	ShardStart(shard int)
	ShardDone(shard int)
	WindowDone()
}

// Hooks customizes a Run. The zero value is valid: every window runs in
// parallel and no barrier callback fires.
type Hooks struct {
	// Serialize, if non-nil, is consulted at each barrier after staged
	// messages have been injected; returning true executes the window
	// [start, end) single-threaded on the coordinator goroutine in
	// deterministic merged order. It runs with all workers quiescent, so
	// it may freely inspect shared simulation state.
	Serialize func(start, end sim.Time) bool
	// OnWindow, if non-nil, runs at each barrier (workers quiescent)
	// after staged injection and the Serialize decision, before the
	// window executes. Intended for per-window bookkeeping such as
	// pruning notes about consumed staged messages, or recording a
	// window ledger (internal/obs/parprof).
	OnWindow func(info WindowInfo)
	// Wall, if non-nil, receives wall-clock callbacks around windows
	// and worker slices. Errors and panics abort a window without its
	// WindowDone, so a probe's totals describe completed windows only.
	Wall WallProbe
}

// Stats counts windows executed by a Run.
type Stats struct {
	Windows    uint64 // total barriers that executed a window
	Serialized uint64 // windows executed single-threaded
	Staged     uint64 // cross-shard messages merged at barriers
}

// ShardedKernel coordinates P sequential kernels under the conservative
// time-window protocol. Construct with New, wire cross-shard sends
// through Stage, then call Run once.
type ShardedKernel struct {
	kernels   []*sim.Kernel
	lookahead sim.Duration
	// staged[src] is appended only by shard src (its worker goroutine
	// during a parallel window, or the coordinator otherwise) and
	// drained only by the coordinator at barriers.
	staged [][]stagedEntry
	seq    []uint64 // per-source staging counters
	merged mergeSorter
	stats  Stats
	// pairs is the per-barrier src-major shards×shards message count
	// scratch behind WindowInfo.Pairs; lastMerged is the total counted
	// into it at the most recent barrier (0 leaves the scratch stale,
	// which is fine — OnWindow only sees it when the count is nonzero).
	pairs      []uint32
	lastMerged int
	// windowEnd is the current window's end, written by the coordinator
	// at the barrier (workers quiescent) and read by workers to assert
	// the lookahead contract on every Stage call.
	windowEnd sim.Time
	running   bool
}

// New returns a sharded kernel over `shards` fresh sequential kernels
// with the given lookahead. The lookahead must be a positive lower
// bound on every cross-shard delivery latency the caller will Stage;
// Stage panics when a staged delivery violates it.
func New(shards int, lookahead sim.Duration) *ShardedKernel {
	if shards < 1 {
		panic(fmt.Sprintf("par: shards must be >= 1, got %d", shards))
	}
	if lookahead < 1 {
		panic(fmt.Sprintf("par: lookahead must be >= 1ns, got %d", lookahead))
	}
	s := &ShardedKernel{
		kernels:   make([]*sim.Kernel, shards),
		lookahead: lookahead,
		staged:    make([][]stagedEntry, shards),
		seq:       make([]uint64, shards),
		pairs:     make([]uint32, shards*shards),
	}
	for i := range s.kernels {
		s.kernels[i] = sim.NewKernel()
	}
	return s
}

// Shards returns the shard count.
func (s *ShardedKernel) Shards() int { return len(s.kernels) }

// Kernel returns shard i's sequential kernel. Callers schedule setup
// events and install per-shard limits directly on it before Run; during
// Run it must only be touched from shard i's own event callbacks (or
// from coordinator-context hooks).
func (s *ShardedKernel) Kernel(i int) *sim.Kernel { return s.kernels[i] }

// Lookahead returns the window width Δ.
func (s *ShardedKernel) Lookahead() sim.Duration { return s.lookahead }

// WindowEnd returns the end of the window currently executing (zero
// before the first barrier). Written only at barriers with workers
// quiescent, so workers may read it freely during a window; senders use
// it to route intra-shard deliveries due beyond the window through the
// staging merge, keeping same-instant cross- and intra-shard arrivals
// in one deterministic order.
func (s *ShardedKernel) WindowEnd() sim.Time { return s.windowEnd }

// Stats returns window counters for the completed (or in-progress) run.
func (s *ShardedKernel) Stats() Stats { return s.stats }

// Stage enqueues a barrier-merged delivery: fn(arg) will be scheduled
// on shard dst's kernel at virtual time `when`, no earlier than the
// next barrier. src must be the calling shard (the coordinator when
// outside a window), sent the virtual instant of the send, and sender
// the sending rank; (when, sent, sender) plus an internal per-src
// counter form the deterministic merge key. dst == src is legal and
// deliberate: an intra-shard delivery due at or after WindowEnd cannot
// fire this window, and staging it puts it in the same total order as
// the cross-shard messages it may tie with at the destination. Staging
// is race-free by ownership: shard src's queue has exactly one writer.
func (s *ShardedKernel) Stage(src, dst int, when, sent sim.Time, sender int, fn func(any), arg any) {
	if s.running && when < s.windowEnd {
		panic(fmt.Sprintf("par: lookahead violation: staged delivery at %d inside window ending %d", when, s.windowEnd))
	}
	s.staged[src] = append(s.staged[src], stagedEntry{
		dst:    dst,
		when:   when,
		sent:   sent,
		sender: sender,
		seq:    s.seq[src],
		fn:     fn,
		arg:    arg,
	})
	s.seq[src]++
}

// injectStaged merges every staged entry, in deterministic key order,
// into the destination kernels, and reports whether any entry was
// injected. Runs on the coordinator with workers quiescent.
func (s *ShardedKernel) injectStaged() bool {
	if s.lastMerged > 0 {
		for i := range s.pairs {
			s.pairs[i] = 0
		}
	}
	n := 0
	for src := range s.staged {
		n += len(s.staged[src])
	}
	s.lastMerged = n
	if n == 0 {
		return false
	}
	shards := len(s.kernels)
	s.merged.e = s.merged.e[:0]
	for src := range s.staged {
		for i := range s.staged[src] {
			s.pairs[src*shards+s.staged[src][i].dst]++
		}
		s.merged.e = append(s.merged.e, s.staged[src]...)
		s.staged[src] = s.staged[src][:0]
	}
	sort.Sort(&s.merged)
	for i := range s.merged.e {
		e := &s.merged.e[i]
		s.kernels[e.dst].AtArg(e.when, e.fn, e.arg)
		e.fn, e.arg = nil, nil // release references promptly
	}
	s.stats.Staged += uint64(n)
	return true
}

// nextEventTime returns the minimum pending event time across all
// kernels, and false when every queue is empty.
func (s *ShardedKernel) nextEventTime() (sim.Time, bool) {
	var min sim.Time
	ok := false
	for _, k := range s.kernels {
		if t, has := k.PeekTime(); has && (!ok || t < min) {
			min, ok = t, true
		}
	}
	return min, ok
}

// runSerialized executes the window [start, end) single-threaded,
// interleaving the shards' kernels in virtual-time order with ties
// broken by shard index. It advances one virtual instant at a time:
// callers in serialized mode may inject events directly into *other*
// kernels from inside a dispatch (the sharded engine's router does,
// for sub-lookahead cross-shard deliveries), so any longer slice
// computed from a pre-dispatch runner-up peek could overrun an event
// injected behind it. One instant per slice keeps global timestamp
// order without re-peeking mid-slice.
func (s *ShardedKernel) runSerialized(end sim.Time) error {
	for {
		best, bestOK := -1, false
		var bestT sim.Time
		for i, k := range s.kernels {
			if t, has := k.PeekTime(); has && (!bestOK || t < bestT) {
				best, bestT, bestOK = i, t, true
			}
		}
		if !bestOK || bestT >= end {
			return nil
		}
		if err := s.kernels[best].RunUntil(bestT + 1); err != nil {
			return err
		}
	}
}

// workerMsg carries a window outcome (or a propagated panic) from a
// shard worker back to the coordinator. The shard index makes error
// selection deterministic when several shards trip a limit in the same
// window.
type workerMsg struct {
	shard int
	err   error
	panic any
}

// Run executes windows until every kernel's queue is drained and no
// staged messages remain, or an error (sim.ErrTimeLimit,
// sim.ErrEventLimit) surfaces from any shard. A panic inside a shard's
// event callback is re-raised on the Run goroutine. Run may be called
// once per ShardedKernel.
func (s *ShardedKernel) Run(hooks Hooks) error {
	if s.running {
		return sim.ErrReentrant
	}
	s.running = true
	defer func() { s.running = false }()

	shards := len(s.kernels)
	wall := hooks.Wall
	cmd := make([]chan sim.Time, shards)
	done := make(chan workerMsg, shards)
	for i := 0; i < shards; i++ {
		cmd[i] = make(chan sim.Time)
		go func(shard int, k *sim.Kernel, c chan sim.Time) {
			for end := range c {
				msg := workerMsg{shard: shard}
				if wall != nil {
					wall.ShardStart(shard)
				}
				func() {
					defer func() { msg.panic = recover() }()
					msg.err = k.RunUntil(end)
				}()
				if wall != nil {
					wall.ShardDone(shard)
				}
				done <- msg
			}
		}(i, s.kernels[i], cmd[i])
	}
	defer func() {
		for i := 0; i < shards; i++ {
			close(cmd[i])
		}
	}()

	for {
		s.injectStaged()
		start, ok := s.nextEventTime()
		if !ok {
			return nil
		}
		end := start.Add(s.lookahead)
		serialized := hooks.Serialize != nil && hooks.Serialize(start, end)
		if hooks.OnWindow != nil {
			info := WindowInfo{Start: start, End: end, Serialized: serialized, Merged: s.lastMerged}
			if s.lastMerged > 0 {
				info.Pairs = s.pairs
			}
			hooks.OnWindow(info)
		}
		if wall != nil {
			wall.WindowStart(start, end, serialized)
		}
		s.windowEnd = end
		s.stats.Windows++
		if serialized {
			s.stats.Serialized++
			if err := s.runSerialized(end); err != nil {
				return err
			}
			if wall != nil {
				wall.WindowDone()
			}
			continue
		}
		for i := 0; i < shards; i++ {
			cmd[i] <- end
		}
		var firstErr error
		var firstPanic any
		errShard, panicShard := shards, shards
		for i := 0; i < shards; i++ {
			msg := <-done
			if msg.panic != nil && msg.shard < panicShard {
				firstPanic, panicShard = msg.panic, msg.shard
			}
			if msg.err != nil && msg.shard < errShard {
				firstErr, errShard = msg.err, msg.shard
			}
		}
		if firstPanic != nil {
			panic(firstPanic)
		}
		if firstErr != nil {
			return firstErr
		}
		if wall != nil {
			wall.WindowDone()
		}
	}
}
