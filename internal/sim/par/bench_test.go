package par

import (
	"fmt"
	"testing"

	"distws/internal/sim"
)

// BenchmarkShardedKernel measures the steady-state cost of the window
// machinery itself: every shard runs a self-perpetuating local event
// chain stepping one window per microsecond, and stages one cross-shard
// message to its ring successor per window, so each iteration pays for
// one full barrier crossing — worker wake-up on every shard, staging
// appends, the deterministic merge, injection — with the event arenas
// and staging queues at capacity. ns/op is the per-window overhead a
// sharded engine run adds on top of the sequential kernels; allocs/op
// must amortize to zero (the committed BENCH_sim.json baseline gates
// it). shards=1 exercises the degenerate single-worker barrier for
// comparison.
//
// Wall-clock scaling across the shards variants needs real cores: on a
// single-CPU runner the workers time-slice and the variants only show
// coordination overhead.
func BenchmarkShardedKernel(b *testing.B) {
	const step = sim.Microsecond
	noop := func(any) {}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sk := New(shards, sim.Duration(step))
			left := make([]int, shards) // owned by each shard's own chain
			ticks := make([]func(any), shards)
			for s := 0; s < shards; s++ {
				s := s
				k := sk.Kernel(s)
				ticks[s] = func(any) {
					if left[s] <= 0 {
						return
					}
					left[s]--
					now := k.Now()
					k.AtArg(now.Add(step), ticks[s], nil)
					if next := (s + 1) % shards; next != s {
						sk.Stage(s, next, now.Add(step), now, s, noop, nil)
					}
				}
			}
			for s := 0; s < shards; s++ {
				left[s] = b.N
				k := sk.Kernel(s)
				k.AtArg(0, ticks[s], nil)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if err := sk.Run(Hooks{}); err != nil {
				b.Fatal(err)
			}
		})
	}
}
