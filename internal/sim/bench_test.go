package sim

import "testing"

// BenchmarkKernelHotPath exercises the kernel's steady-state scheduling
// loop the way the engine drives it: a population of concurrent timers
// (one per simulated rank) that each reschedule themselves on dispatch,
// with a fraction of schedules cancelled and immediately replaced —
// the quantum-cancel pattern finishRank and aborting steals produce.
// The alloc gate (TestKernelHotPathAllocFree) requires this loop to be
// allocation-free after warm-up.
func BenchmarkKernelHotPath(b *testing.B) {
	k := NewKernel()
	const lanes = 64
	var fns [lanes]func()
	done := 0
	for i := 0; i < lanes; i++ {
		i := i
		fns[i] = func() {
			done++
			if done >= b.N {
				return
			}
			e := k.After(Duration(1+i%7), fns[i])
			if i%5 == 0 {
				// Cancel-and-reschedule at a nearby timestamp: exercises
				// the cancellation path under load.
				k.Cancel(e)
				k.After(Duration(1+i%3), fns[i])
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < lanes; i++ {
		k.After(Duration(i), fns[i])
	}
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// TestKernelHotPathAllocFree is the alloc gate for the scheduling hot
// path: after warm-up (arena and heap at steady-state capacity),
// schedule / cancel / dispatch must not allocate at all.
func TestKernelHotPathAllocFree(t *testing.T) {
	k := NewKernel()
	remaining := 0
	var fn func()
	fn = func() {
		remaining--
		if remaining > 0 {
			e := k.After(Duration(1+remaining%7), fn)
			if remaining%5 == 0 {
				k.Cancel(e)
				k.After(1, fn)
			}
		}
	}
	body := func() {
		remaining = 2000
		k.After(1, fn)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	body() // reach steady-state capacity before measuring
	if got := testing.AllocsPerRun(20, body); got != 0 {
		t.Fatalf("kernel hot path allocates %.1f allocs/run, want 0", got)
	}
}
