package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// checkInvariants verifies the structural invariants of the arena
// kernel: heap order, index tracking, free-list consistency and the
// live-event count. It must hold between any two kernel operations.
func (k *Kernel) checkInvariants() error {
	seen := make(map[int32]bool, len(k.heap))
	liveCount := 0
	for i, e := range k.heap {
		n := &k.arena[e.idx]
		if n.when != e.when || n.seq != e.seq {
			return fmt.Errorf("heap[%d] key (%d,%d) disagrees with slot %d key (%d,%d)",
				i, e.when, e.seq, e.idx, n.when, n.seq)
		}
		if seen[e.idx] {
			return fmt.Errorf("slot %d appears twice in the heap", e.idx)
		}
		seen[e.idx] = true
		if !n.cancelled {
			liveCount++
		}
		if i > 0 {
			parent := k.heap[(i-1)/4]
			if entryLess(e, parent) {
				return fmt.Errorf("heap order violated at %d: (%d,%d) < parent (%d,%d)",
					i, e.when, e.seq, parent.when, parent.seq)
			}
		}
	}
	if liveCount != k.live {
		return fmt.Errorf("live = %d, heap holds %d non-cancelled events", k.live, liveCount)
	}
	for _, idx := range k.free {
		if seen[idx] {
			return fmt.Errorf("slot %d is both queued and free", idx)
		}
		seen[idx] = true
	}
	if len(k.heap)+len(k.free) != len(k.arena) {
		return fmt.Errorf("arena accounting: %d heap + %d free != %d slots",
			len(k.heap), len(k.free), len(k.arena))
	}
	return nil
}

// TestCancelThenRescheduleSameTimestamp covers the free-list round
// trip the engine performs when a rank's quantum is cancelled and a
// replacement lands on the same virtual time: the recycled slot must
// get a fresh sequence number, preserving FIFO order among survivors.
func TestCancelThenRescheduleSameTimestamp(t *testing.T) {
	k := NewKernel()
	var order []string
	k.At(10, func() { order = append(order, "a") })
	e := k.At(10, func() { order = append(order, "dead") })
	k.At(10, func() { order = append(order, "b") })
	k.Cancel(e)
	// The replacement reuses the freed slot but schedules after "b".
	k.At(10, func() { order = append(order, "c") })
	if err := k.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[a b c]"
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("dispatch order %v, want %v", got, want)
	}
}

// TestCancelDuringDispatch cancels a same-timestamp event from inside
// a running callback: the victim is already in the heap, possibly at
// the root, and must be skipped, not dispatched.
func TestCancelDuringDispatch(t *testing.T) {
	k := NewKernel()
	ran := false
	var victim Event
	k.At(5, func() { k.Cancel(victim) })
	victim = k.At(5, func() { ran = true })
	survivor := 0
	k.At(5, func() { survivor++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("event cancelled during dispatch still ran")
	}
	if survivor != 1 {
		t.Fatalf("survivor ran %d times, want 1", survivor)
	}
	if err := k.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelSelfDuringDispatch: a callback cancelling its own (now
// stale) handle must be a no-op — the slot may already host another
// event.
func TestCancelSelfDuringDispatch(t *testing.T) {
	k := NewKernel()
	var self Event
	ran := false
	self = k.At(3, func() {
		k.Cancel(self) // stale: we are already dispatched
		k.At(4, func() { ran = true })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("follow-up event lost to a stale self-cancel")
	}
}

// TestPendingExcludesCancelled asserts the queue-depth accounting the
// tests rely on: cancelled events are not pending work.
func TestPendingExcludesCancelled(t *testing.T) {
	k := NewKernel()
	var events []Event
	for i := 0; i < 10; i++ {
		events = append(events, k.At(Time(i+1), func() {}))
	}
	if k.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", k.Pending())
	}
	for i := 0; i < 10; i += 2 {
		k.Cancel(events[i])
	}
	if k.Pending() != 5 {
		t.Fatalf("Pending = %d after cancelling 5, want 5", k.Pending())
	}
	k.Cancel(events[0]) // double cancel must not skew the count
	if k.Pending() != 5 {
		t.Fatalf("Pending = %d after double cancel, want 5", k.Pending())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", k.Pending())
	}
}

// TestStepHonorsLimits: Step must enforce the same event and time
// limits as Run instead of dispatching past them.
func TestStepHonorsLimits(t *testing.T) {
	k := NewKernel()
	k.SetEventLimit(2)
	n := 0
	for i := 1; i <= 4; i++ {
		k.At(Time(i), func() { n++ })
	}
	for k.Step() {
	}
	if n != 2 {
		t.Fatalf("Step dispatched %d events past a limit of 2", n)
	}
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", k.Pending())
	}

	k2 := NewKernel()
	k2.SetTimeLimit(10)
	ran := false
	k2.At(5, func() {})
	k2.At(20, func() { ran = true })
	if !k2.Step() {
		t.Fatal("Step refused an event inside the time limit")
	}
	if k2.Step() {
		t.Fatal("Step dispatched an event beyond the time limit")
	}
	if ran {
		t.Fatal("event beyond the time limit ran")
	}
	if k2.Now() != 5 {
		t.Fatalf("clock = %d, want 5", k2.Now())
	}
}

// TestStepSkipsCancelled: Step must not report a dispatch for events
// that were cancelled, and must reclaim their slots.
func TestStepSkipsCancelled(t *testing.T) {
	k := NewKernel()
	e := k.At(1, func() { t.Fatal("cancelled event ran") })
	k.Cancel(e)
	ran := false
	k.At(2, func() { ran = true })
	if !k.Step() {
		t.Fatal("Step returned false with a live event queued")
	}
	if !ran {
		t.Fatal("Step dispatched the wrong event")
	}
	if k.Step() {
		t.Fatal("Step returned true on an empty queue")
	}
	if err := k.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestArenaMixedOpsFuzz drives the kernel through 10^5 randomized
// schedule / cancel / dispatch operations against a reference model,
// asserting after every phase that the heap invariants hold, that
// dispatch order is globally sorted by (time, scheduling order), that
// cancelled events never run, and that every surviving event runs
// exactly once.
func TestArenaMixedOpsFuzz(t *testing.T) {
	const ops = 100_000
	rng := rand.New(rand.NewSource(20260805))
	k := NewKernel()

	type ref struct {
		id        int
		when      Time
		cancelled bool
	}
	handles := make(map[int]Event) // live, not yet dispatched (as far as the model knows)
	model := make(map[int]*ref)
	var dispatched []int
	nextID := 0
	liveIDs := make([]int, 0, ops)

	scheduleOne := func() {
		id := nextID
		nextID++
		when := k.Now().Add(Duration(rng.Intn(1000)))
		model[id] = &ref{id: id, when: when}
		handles[id] = k.At(when, func() { dispatched = append(dispatched, id) })
		liveIDs = append(liveIDs, id)
	}

	for i := 0; i < ops; i++ {
		switch p := rng.Intn(100); {
		case p < 55:
			scheduleOne()
		case p < 75:
			if len(liveIDs) == 0 {
				scheduleOne()
				continue
			}
			j := rng.Intn(len(liveIDs))
			id := liveIDs[j]
			liveIDs[j] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
			// May be a stale handle (already dispatched): Cancel must be
			// a no-op then; the model only marks truly pending events.
			if k.Live(handles[id]) {
				model[id].cancelled = true
			}
			k.Cancel(handles[id])
		default:
			k.Step()
		}
		if i%5000 == 0 {
			if err := k.checkInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	for k.Step() {
	}
	if err := k.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", k.Pending())
	}

	// Every dispatched id must be unique, non-cancelled, and in global
	// (when, seq) order. Ids are allocated in scheduling order, so for
	// equal timestamps the id order is the required FIFO order.
	seen := make(map[int]bool, len(dispatched))
	for i, id := range dispatched {
		if seen[id] {
			t.Fatalf("event %d dispatched twice", id)
		}
		seen[id] = true
		r := model[id]
		if r.cancelled {
			t.Fatalf("cancelled event %d ran", id)
		}
		if i > 0 {
			prev := model[dispatched[i-1]]
			if r.when < prev.when {
				t.Fatalf("dispatch order violated: %d@%d after %d@%d",
					id, r.when, prev.id, prev.when)
			}
			if r.when == prev.when && id < prev.id {
				t.Fatalf("FIFO tie-break violated at t=%d: id %d after id %d",
					r.when, id, prev.id)
			}
		}
	}
	for id, r := range model {
		if !r.cancelled && !seen[id] {
			t.Fatalf("event %d lost: neither cancelled nor dispatched", id)
		}
	}
	if len(dispatched) == 0 {
		t.Fatal("fuzz dispatched nothing")
	}
}
