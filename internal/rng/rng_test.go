package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Verify the algebraic property: the i-th output for seed s equals
	// the SplitMix64 finalizer applied to s + (i+1)*gamma. Mix64 applies
	// the increment itself, so pass the state *before* the increment.
	s := NewSplitMix64(1234567)
	for i := 0; i < 100; i++ {
		want := Mix64(1234567 + uint64(i)*0x9e3779b97f4a7c15)
		if got := s.Uint64(); got != want {
			t.Fatalf("draw %d: got %#x want %#x", i, got, want)
		}
	}
}

func TestMix64NotIdentity(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		v := Mix64(i)
		if seen[v] {
			t.Fatalf("collision at %d", i)
		}
		seen[v] = true
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws across different seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	x := New(7)
	for i := 0; i < 100000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	x := New(9)
	for i := 0; i < 100000; i++ {
		n := 1 + i%100
		v := x.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d", n, v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	x.Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared test over 16 buckets; threshold is the 99.9th
	// percentile of chi2 with 15 dof (~37.7).
	x := New(123)
	const n, buckets = 160000, 16
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[x.Uint64n(buckets)]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Fatalf("chi2 = %.2f over 15 dof, distribution looks biased: %v", chi2, counts)
	}
}

func TestMul128AgainstBits(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul128(a, b)
		whi, wlo := bits.Mul64(a, b)
		return hi == whi && lo == wlo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := New(5)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := x.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermShuffles(t *testing.T) {
	x := New(11)
	identical := 0
	for trial := 0; trial < 100; trial++ {
		p := x.Perm(20)
		inPlace := 0
		for i, v := range p {
			if i == v {
				inPlace++
			}
		}
		if inPlace == 20 {
			identical++
		}
	}
	if identical > 1 {
		t.Fatalf("identity permutation appeared %d/100 times", identical)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	x := New(77)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := x.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}

func TestJumpProducesDisjointStreams(t *testing.T) {
	a := New(31337)
	b := New(31337)
	b.Jump()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("jumped stream collided %d times with base stream", same)
	}
}

func TestZeroStateGuard(t *testing.T) {
	// New must never produce the all-zero fixed point.
	for seed := uint64(0); seed < 100; seed++ {
		x := New(seed)
		if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
			t.Fatalf("seed %d produced all-zero state", seed)
		}
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := New(1)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	x := New(1)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += x.Intn(8192)
	}
	_ = sink
}
