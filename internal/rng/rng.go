// Package rng provides small, fast, deterministic pseudo-random number
// generators with explicit state.
//
// The simulator cannot use math/rand's global state: every simulated rank
// needs its own reproducible stream so that a run is a pure function of
// its seed, independent of how many other ranks exist or in which order
// they draw. SplitMix64 is used for seeding and cheap streams;
// xoshiro256** is the general-purpose generator.
package rng

import "math"

// SplitMix64 is the 64-bit SplitMix generator of Steele, Lea and Flood.
// It is primarily used to expand a single seed into independent seeds for
// other generators; it passes BigCrush on its own.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 returns the SplitMix64 finalizer of x: a high-quality stateless
// hash of a 64-bit value, useful for deriving per-rank seeds.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 is the xoshiro256** 1.0 generator of Blackman and Vigna.
// The zero value is invalid (all-zero state); construct with New.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a xoshiro256** generator whose state is expanded from seed
// with SplitMix64, as the authors recommend.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	// An all-zero state would be a fixed point; SplitMix64 cannot emit
	// four consecutive zeros, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which is unbiased.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(x.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Lemire (2019): multiply-shift with rejection in the low word.
	v := x.Uint64()
	hi, lo := mul128(v, n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			v = x.Uint64()
			hi, lo = mul128(v, n)
		}
	}
	_ = lo
	return hi
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a0 * b0
	lo = t & mask32
	c := t >> 32
	t = a1*b0 + c
	m := t & mask32
	c = t >> 32
	t = a0*b1 + m
	lo |= (t & mask32) << 32
	hi = a1*b1 + c + t>>32
	return hi, lo
}

// Perm returns a random permutation of [0, n) using the Fisher–Yates
// shuffle.
func (x *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normal variate using the polar
// Marsaglia method. Useful for jitter injection in latency models.
func (x *Xoshiro256) NormFloat64() float64 {
	for {
		u := 2*x.Float64() - 1
		v := 2*x.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Jump advances the generator by 2^128 steps, producing a stream that
// will not overlap the original for 2^128 draws. Used to derive
// independent per-rank streams from a single seed.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := uint(0); b < 64; b++ {
			if j&(1<<b) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s = [4]uint64{s0, s1, s2, s3}
}
