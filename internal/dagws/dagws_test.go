package dagws

import (
	"testing"

	"distws/internal/dag"
	"distws/internal/sim"
	"distws/internal/topology"
	"distws/internal/victim"
)

func testGraph(t testing.TB, seed uint64) *dag.Graph {
	t.Helper()
	g, err := dag.Generate(dag.Params{
		Seed: seed, Layers: 24, WidthMean: 12, EdgesPerTask: 2,
		LocalityWindow: 2, CostMean: 20 * sim.Microsecond, DataMean: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{Ranks: 4}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Run(Config{Graph: testGraph(t, 1), Ranks: 0}); err == nil {
		t.Fatal("zero ranks accepted")
	}
}

func TestSingleRankExecutesEverything(t *testing.T) {
	g := testGraph(t, 2)
	res, err := Run(Config{Graph: g, Ranks: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != g.Len() {
		t.Fatalf("executed %d of %d tasks", res.Tasks, g.Len())
	}
	// One rank, no fetches, no steals: makespan == total cost.
	if res.Makespan != res.TotalCost {
		t.Fatalf("makespan %v != total cost %v on one rank", res.Makespan, res.TotalCost)
	}
	if res.BytesFetched != 0 || res.Steals != 0 {
		t.Fatalf("phantom communication: %+v", res)
	}
}

func TestParallelCompletesAndRespectsBounds(t *testing.T) {
	g := testGraph(t, 3)
	for _, ranks := range []int{2, 8, 32} {
		res, err := Run(Config{Graph: g, Ranks: ranks, Seed: 7})
		if err != nil {
			t.Fatalf("%d ranks: %v", ranks, err)
		}
		if res.Makespan < res.CriticalPath {
			t.Fatalf("%d ranks: makespan %v below critical path %v", ranks, res.Makespan, res.CriticalPath)
		}
		if res.Speedup > float64(ranks) {
			t.Fatalf("%d ranks: speedup %.2f exceeds rank count", ranks, res.Speedup)
		}
		if res.Speedup <= 0 {
			t.Fatalf("%d ranks: no speedup", ranks)
		}
	}
}

func TestDependenciesRespected(t *testing.T) {
	// A pure chain: no parallelism is possible, and makespan must be
	// at least the chain cost plus the inter-rank fetch time.
	g := &dag.Graph{Tasks: make([]dag.Task, 10)}
	for i := range g.Tasks {
		g.Tasks[i].ID = int32(i)
		g.Tasks[i].Layer = int32(i)
		g.Tasks[i].Cost = 10 * sim.Microsecond
		g.TotalCost += g.Tasks[i].Cost
		if i > 0 {
			g.Tasks[i].Preds = []int32{int32(i - 1)}
			g.Tasks[i].PredData = []int{1024}
			g.Tasks[i-1].Succs = []int32{int32(i)}
			g.TotalBytes += 1024
		}
	}
	g.Roots = []int32{0}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Graph: g, Ranks: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < g.CriticalPath() {
		t.Fatalf("chain makespan %v below critical path %v", res.Makespan, g.CriticalPath())
	}
	if res.Speedup > 1.01 {
		t.Fatalf("chain achieved speedup %.2f", res.Speedup)
	}
}

func TestDeterminism(t *testing.T) {
	g := testGraph(t, 5)
	cfg := Config{Graph: g, Ranks: 16, Selector: victim.NewDistanceSkewed, StealHalf: true, Seed: 11}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.BytesFetched != b.BytesFetched || a.Steals != b.Steals {
		t.Fatalf("same-seed runs differ:\n%+v\n%+v", a, b)
	}
}

func TestStealingMovesTasks(t *testing.T) {
	g := testGraph(t, 9)
	res, err := Run(Config{Graph: g, Ranks: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals == 0 || res.TasksStolen == 0 {
		t.Fatalf("no stealing on 16 ranks: %+v", res)
	}
	if res.BytesFetched == 0 {
		t.Fatal("no data fetched despite cross-rank dependencies")
	}
	if res.FetchTime == 0 {
		t.Fatal("fetches cost no time")
	}
}

func TestAllSelectorsComplete(t *testing.T) {
	g := testGraph(t, 13)
	for name, factory := range victim.Strategies {
		res, err := Run(Config{Graph: g, Ranks: 8, Selector: factory, Seed: 17})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Tasks != g.Len() {
			t.Fatalf("%s: incomplete execution", name)
		}
	}
}

func TestPlacements(t *testing.T) {
	g := testGraph(t, 15)
	for _, pl := range []topology.Placement{topology.OnePerNode, topology.EightRoundRobin, topology.EightGrouped} {
		res, err := Run(Config{Graph: g, Ranks: 16, Placement: pl, Seed: 19})
		if err != nil {
			t.Fatalf("%v: %v", pl, err)
		}
		if res.Speedup <= 0 {
			t.Fatalf("%v: %+v", pl, res)
		}
	}
}

func BenchmarkDAGSchedule(b *testing.B) {
	g := testGraph(b, 21)
	cfg := Config{Graph: g, Ranks: 32, Selector: victim.NewDistanceSkewed, StealHalf: true, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
