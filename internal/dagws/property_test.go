package dagws

import (
	"testing"
	"testing/quick"

	"distws/internal/dag"
	"distws/internal/sim"
	"distws/internal/victim"
)

// TestPropertyScheduleCorrectness generates random small graphs and
// random scheduler configurations and asserts the invariants every
// schedule must satisfy: all tasks run, the makespan respects the
// critical path, and speedup never exceeds the rank count.
func TestPropertyScheduleCorrectness(t *testing.T) {
	selectors := []victim.Factory{
		victim.NewRoundRobin, victim.NewUniformRandom, victim.NewDistanceSkewed,
	}
	f := func(gseed uint64, layersRaw, widthRaw, ranksRaw, selRaw uint8, half bool, sseed uint64) bool {
		g, err := dag.Generate(dag.Params{
			Seed:   gseed,
			Layers: int(layersRaw%10) + 1, WidthMean: int(widthRaw%6) + 1,
			EdgesPerTask: 1.5, LocalityWindow: 2,
			CostMean: 5 * sim.Microsecond, DataMean: 512,
		})
		if err != nil {
			return false
		}
		ranks := int(ranksRaw%12) + 1
		res, err := Run(Config{
			Graph: g, Ranks: ranks,
			Selector:  selectors[int(selRaw)%len(selectors)],
			StealHalf: half, Seed: sseed,
		})
		if err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		if res.Tasks != g.Len() {
			return false
		}
		if res.Makespan < res.CriticalPath {
			t.Logf("makespan %v < critical path %v", res.Makespan, res.CriticalPath)
			return false
		}
		if res.Speedup > float64(ranks)+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
