// Package dagws is a distributed work-stealing scheduler for task
// graphs with data dependencies — the study the paper's §VII proposes:
// "in the case of data dependencies, stealing a task can trigger
// massive communications and thus is more sensible to bandwidth".
//
// It runs over the same simulated machine as the UTS engine
// (internal/core) and reuses its victim-selection strategies, but
// schedules dag.Graph tasks instead of tree nodes:
//
//   - a task becomes ready when its last predecessor completes, and is
//     enqueued at the rank that executed that predecessor;
//   - before executing a task, a rank fetches every other
//     predecessor's output from the rank that produced it, paying
//     round-trip latency plus bytes/bandwidth (fetches overlap, so the
//     delay is their maximum);
//   - idle ranks steal ready tasks using a pluggable victim selector;
//     stolen tasks usually fetch their inputs from far away, which is
//     exactly the locality cost the paper anticipates.
//
// Simplifications, by design: dependence counters are shared scheduler
// state (zero-latency bookkeeping messages), and termination uses the
// known task count rather than a distributed detector. Both are
// orthogonal to the locality-vs-stealing question this extension
// studies.
package dagws

import (
	"errors"
	"fmt"

	"distws/internal/comm"
	"distws/internal/dag"
	"distws/internal/sim"
	"distws/internal/topology"
	"distws/internal/victim"
)

// Config describes one scheduled execution.
type Config struct {
	Graph *dag.Graph
	// Machine defaults to the K Computer.
	Machine topology.Machine
	// Ranks is the number of scheduler ranks (required).
	Ranks int
	// Placement maps ranks to nodes.
	Placement topology.Placement
	// Selector builds the victim selector; nil means uniform random.
	Selector victim.Factory
	// StealHalf takes half the victim's ready deque instead of one task.
	StealHalf bool
	// Latency is the network model; nil means topology.DefaultLatency.
	Latency topology.LatencyModel
	// Seed drives the random choices.
	Seed uint64
	// MaxVirtualTime bounds the run; 0 means one virtual day.
	MaxVirtualTime sim.Time
}

// Result summarizes a scheduled execution.
type Result struct {
	Tasks        int
	Ranks        int
	Makespan     sim.Duration
	TotalCost    sim.Duration
	CriticalPath sim.Duration
	Speedup      float64
	Efficiency   float64

	Steals, FailedSteals uint64
	// TasksStolen counts tasks that executed on a different rank than
	// the one they became ready on.
	TasksStolen uint64
	// BytesFetched is the total predecessor data moved between ranks.
	BytesFetched int64
	// FetchTime is the accumulated time ranks spent stalled on fetches.
	FetchTime sim.Duration
}

type rankState uint8

const (
	rsIdle rankState = iota
	rsWorking
	rsSearching
	rsDone
)

type schedRank struct {
	state rankState
	// ready is the local deque of ready task IDs: new tasks append to
	// the back (hot end); the owner pops from the back, thieves take
	// from the front.
	ready []int32

	executed      uint64
	steals, fails uint64
	fetchTime     sim.Duration
}

type scheduler struct {
	cfg    Config
	kernel *sim.Kernel
	job    *topology.Job
	net    *comm.Network
	sel    victim.Selector
	ranks  []schedRank

	// remaining[t] is the number of incomplete predecessors of task t;
	// executor[t] the rank that ran it.
	remaining []int32
	executor  []int32

	completed   int
	finishedAt  sim.Time
	bytesMoved  int64
	tasksStolen uint64
}

type stealRequestMsg struct{}

type taskBatch struct {
	Tasks []int32
	// StolenFrom preserves where the batch came from, for statistics.
	StolenFrom int
}

// Run schedules the graph to completion and returns statistics.
func Run(cfg Config) (*Result, error) {
	if cfg.Graph == nil || cfg.Graph.Len() == 0 {
		return nil, errors.New("dagws: empty graph")
	}
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("dagws: %d ranks", cfg.Ranks)
	}
	if cfg.Machine == (topology.Machine{}) {
		cfg.Machine = topology.KComputer()
	}
	if cfg.Selector == nil {
		cfg.Selector = victim.NewUniformRandom
	}
	if cfg.Latency == nil {
		cfg.Latency = topology.DefaultLatency()
	}
	if cfg.MaxVirtualTime == 0 {
		cfg.MaxVirtualTime = sim.Time(24 * 3600 * 1e9)
	}
	job, err := topology.NewJob(cfg.Machine, cfg.Ranks, cfg.Placement)
	if err != nil {
		return nil, err
	}

	g := cfg.Graph
	s := &scheduler{
		cfg:       cfg,
		kernel:    sim.NewKernel(),
		job:       job,
		ranks:     make([]schedRank, cfg.Ranks),
		remaining: make([]int32, g.Len()),
		executor:  make([]int32, g.Len()),
	}
	s.kernel.SetTimeLimit(cfg.MaxVirtualTime)
	s.net = comm.New(s.kernel, job, cfg.Latency)
	s.sel = cfg.Selector(job, cfg.Seed)
	for t := range s.executor {
		s.executor[t] = -1
		s.remaining[t] = int32(len(g.Tasks[t].Preds))
	}
	for r := range s.ranks {
		r := r
		s.net.SetNotify(r, func() { s.onDelivery(r) })
	}

	// Roots are statically partitioned round-robin, as a runtime's
	// initial task placement would.
	for i, root := range g.Roots {
		s.ranks[i%cfg.Ranks].ready = append(s.ranks[i%cfg.Ranks].ready, root)
	}
	for r := 0; r < cfg.Ranks; r++ {
		if len(s.ranks[r].ready) > 0 {
			s.startNext(r)
		} else {
			s.search(r)
		}
	}

	if err := s.kernel.Run(); err != nil {
		return nil, fmt.Errorf("dagws: simulation aborted at %v: %w", s.kernel.Now(), err)
	}
	if s.completed != g.Len() {
		return nil, fmt.Errorf("dagws: completed %d of %d tasks", s.completed, g.Len())
	}

	res := &Result{
		Tasks:        g.Len(),
		Ranks:        cfg.Ranks,
		Makespan:     sim.Duration(s.finishedAt),
		TotalCost:    g.TotalCost,
		CriticalPath: g.CriticalPath(),
		BytesFetched: s.bytesMoved,
		TasksStolen:  s.tasksStolen,
	}
	for r := range s.ranks {
		res.Steals += s.ranks[r].steals
		res.FailedSteals += s.ranks[r].fails
		res.FetchTime += s.ranks[r].fetchTime
	}
	if res.Makespan > 0 {
		res.Speedup = float64(res.TotalCost) / float64(res.Makespan)
		res.Efficiency = res.Speedup / float64(cfg.Ranks)
	}
	return res, nil
}

// startNext pops the hottest ready task and executes it: fetch inputs,
// then compute, then complete.
func (s *scheduler) startNext(r int) {
	rk := &s.ranks[r]
	t := rk.ready[len(rk.ready)-1]
	rk.ready = rk.ready[:len(rk.ready)-1]
	rk.state = rsWorking

	task := &s.cfg.Graph.Tasks[t]
	// Overlapped fetches: delay is the slowest predecessor transfer.
	var fetch sim.Duration
	for i, pred := range task.Preds {
		e := s.executor[pred]
		if e < 0 {
			panic(fmt.Sprintf("dagws: task %d ready before pred %d completed", t, pred))
		}
		if int(e) == r {
			continue
		}
		bytes := task.PredData[i]
		d := s.cfg.Latency.Latency(s.job, r, int(e), 0) + // request
			s.cfg.Latency.Latency(s.job, int(e), r, bytes) // data
		if d > fetch {
			fetch = d
		}
		s.bytesMoved += int64(bytes)
	}
	rk.fetchTime += fetch
	s.kernel.After(fetch+task.Cost, func() { s.complete(r, t) })
}

// complete finishes task t on rank r: activate successors, poll steal
// traffic, continue with local work or start searching.
func (s *scheduler) complete(r int, t int32) {
	rk := &s.ranks[r]
	rk.executed++
	s.executor[t] = int32(r)
	s.completed++
	if s.completed == s.cfg.Graph.Len() {
		s.finishedAt = s.kernel.Now()
		s.finish()
		return
	}
	for _, succ := range s.cfg.Graph.Tasks[t].Succs {
		s.remaining[succ]--
		if s.remaining[succ] == 0 {
			// Ready at the rank completing the last dependence.
			rk.ready = append(rk.ready, succ)
		}
	}
	s.drain(r)
	if rk.state == rsDone {
		return
	}
	if len(rk.ready) > 0 {
		s.startNext(r)
		return
	}
	s.search(r)
}

// search sends a steal request to the next victim.
func (s *scheduler) search(r int) {
	rk := &s.ranks[r]
	if rk.state == rsDone {
		return
	}
	if s.cfg.Ranks == 1 {
		rk.state = rsIdle
		return
	}
	rk.state = rsSearching
	v := s.sel.Next(r)
	s.net.Send(r, v, comm.TagStealRequest, stealRequestMsg{}, 16)
}

// onDelivery handles traffic for idle ranks immediately; working ranks
// answer at task completion (drain).
func (s *scheduler) onDelivery(r int) {
	if s.ranks[r].state == rsWorking {
		return
	}
	s.drain(r)
	rk := &s.ranks[r]
	if rk.state == rsDone {
		return
	}
	if rk.state != rsWorking && len(rk.ready) > 0 {
		s.startNext(r)
	}
}

// drain processes all delivered messages for rank r. Every polled
// message is freed once handled — the ready tasks are copied out by
// append, so nothing the message carries is retained.
func (s *scheduler) drain(r int) {
	rk := &s.ranks[r]
	for _, m := range s.net.Poll(r) {
		switch m.Tag {
		case comm.TagStealRequest:
			s.answerSteal(r, m.From)
		case comm.TagWork:
			if rk.state != rsDone {
				batch := m.Payload.(taskBatch)
				rk.steals++
				s.tasksStolen += uint64(len(batch.Tasks))
				s.sel.Observe(r, m.From, true)
				rk.ready = append(rk.ready, batch.Tasks...)
				if rk.state == rsSearching {
					rk.state = rsIdle
				}
			}
		case comm.TagNoWork:
			if rk.state != rsDone {
				rk.fails++
				s.sel.Observe(r, m.From, false)
				if rk.state == rsSearching {
					rk.state = rsIdle
					s.search(r)
				}
			}
		case comm.TagTerminate:
			rk.state = rsDone
		}
		s.net.Free(m)
	}
}

// answerSteal serves thief from rank v's ready deque front.
func (s *scheduler) answerSteal(v, thief int) {
	rk := &s.ranks[v]
	n := len(rk.ready)
	if rk.state == rsDone || n == 0 || (rk.state != rsWorking && n <= 1) {
		s.net.Send(v, thief, comm.TagNoWork, stealRequestMsg{}, 16)
		return
	}
	take := 1
	if s.cfg.StealHalf {
		take = n / 2
		if take < 1 {
			take = 1
		}
	}
	if take >= n && rk.state != rsWorking {
		take = n - 1 // keep one task for the owner about to resume
	}
	batch := taskBatch{Tasks: append([]int32(nil), rk.ready[:take]...), StolenFrom: v}
	rk.ready = append(rk.ready[:0], rk.ready[take:]...)
	// Task descriptors are small; the heavy data moves at fetch time.
	s.net.Send(v, thief, comm.TagWork, batch, 16+len(batch.Tasks)*8)
}

// finish broadcasts completion so idle ranks stop generating traffic.
func (s *scheduler) finish() {
	for r := range s.ranks {
		if s.ranks[r].state != rsDone {
			s.ranks[r].state = rsDone
		}
	}
	s.kernel.Stop()
}
