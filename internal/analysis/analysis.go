// Package analysis is a small, dependency-free static-analysis
// framework modeled on golang.org/x/tools/go/analysis, built on the
// standard library's go/parser, go/types and go/importer only (the
// build environment has no module network access).
//
// It exists to make the repository's determinism and concurrency
// invariants machine-checked rather than comment-enforced: the
// simulator must be a pure function of its seed, so every random draw
// has to flow through internal/rng, no virtual-time package may
// consult the wall clock, arena event handles and pooled messages must
// follow their ownership rules, and the deterministic packages must
// stay free of ordering hazards before the kernel is sharded across
// threads. A module-wide call graph (see CallGraph) lets the analyzers
// follow these invariants through wrapper functions instead of only at
// direct call sites. The concrete analyzers live in the subpackages
// detrand, walltime, lockcheck, atomicmix, handlesafe, poolcheck,
// hotalloc and detorder; the driver is cmd/distwsvet.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding, attributed to the analyzer that made it
// and the package it was found in.
type Diagnostic struct {
	Analyzer string
	Package  string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ImportPath is the package's import path as the go tool reports
	// it. Analyzers use it for allowlist decisions.
	ImportPath string
	// Graph is the module-wide call graph over every package of this
	// Run, shared across passes. Interprocedural analyzers query it for
	// reachability; intraprocedural ones can ignore it.
	Graph *CallGraph

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Package:  p.ImportPath,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each package and returns all
// diagnostics sorted by file position. Passes run concurrently up to
// GOMAXPROCS; analyzers must confine mutable state to the pass.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunParallel(pkgs, analyzers, runtime.GOMAXPROCS(0))
}

// RunParallel is Run with an explicit (package, analyzer) pass
// concurrency. Loading and type-checking stay serial in Load; the
// passes themselves only read the shared FileSet, type info and call
// graph, so they parallelize freely. Output is deterministic: results
// are merged in a fixed order and fully sorted.
func RunParallel(pkgs []*Package, analyzers []*Analyzer, workers int) ([]Diagnostic, error) {
	if workers < 1 {
		workers = 1
	}
	graph := BuildCallGraph(pkgs)

	type job struct {
		pkg *Package
		a   *Analyzer
	}
	var jobs []job
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			jobs = append(jobs, job{pkg, a})
		}
	}
	results := make([][]Diagnostic, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pass := &Pass{
				Analyzer:   j.a,
				Fset:       j.pkg.Fset,
				Files:      j.pkg.Files,
				Pkg:        j.pkg.Types,
				Info:       j.pkg.Info,
				ImportPath: j.pkg.ImportPath,
				Graph:      graph,
			}
			if err := j.a.Run(pass); err != nil {
				errs[i] = fmt.Errorf("%s: %s: %w", j.a.Name, j.pkg.ImportPath, err)
				return
			}
			results[i] = pass.diags
		}(i, j)
	}
	wg.Wait()
	var diags []Diagnostic
	for i := range jobs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		diags = append(diags, results[i]...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// PathMatches reports whether an import path equals one of the given
// prefixes or sits below one of them (prefix match on whole path
// segments, so "a/b" matches "a/b" and "a/b/c" but not "a/bc").
func PathMatches(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
