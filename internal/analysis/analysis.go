// Package analysis is a small, dependency-free static-analysis
// framework modeled on golang.org/x/tools/go/analysis, built on the
// standard library's go/parser, go/types and go/importer only (the
// build environment has no module network access).
//
// It exists to make the repository's determinism and concurrency
// invariants machine-checked rather than comment-enforced: the
// simulator must be a pure function of its seed, so every random draw
// has to flow through internal/rng and no virtual-time package may
// consult the wall clock. The concrete analyzers live in the
// subpackages detrand, walltime, lockcheck and atomicmix; the driver is
// cmd/distwsvet.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding, attributed to the analyzer that made it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ImportPath is the package's import path as the go tool reports
	// it. Analyzers use it for allowlist decisions.
	ImportPath string

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each package and returns all
// diagnostics sorted by file position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				ImportPath: pkg.ImportPath,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
			diags = append(diags, pass.diags...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// PathMatches reports whether an import path equals one of the given
// prefixes or sits below one of them (prefix match on whole path
// segments, so "a/b" matches "a/b" and "a/b/c" but not "a/bc").
func PathMatches(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
