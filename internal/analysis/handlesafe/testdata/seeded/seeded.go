// Package seeded is a deliberately broken copy of the engine's
// quantum-handle discipline (internal/core crashRank/finishRank): the
// production code cancels rk.quantum and immediately re-zeroes it, and
// this copy drops the re-arm, so the later liveness read consults a
// dead ticket. The analyzer must fire on both the long-lived field and
// the stale read.
package seeded

import "distws/internal/sim"

type rank struct {
	state   int
	quantum sim.Event // want `struct field rank.quantum stores a sim.Event handle`
}

type engine struct {
	kernel *sim.Kernel
	ranks  []rank
}

// crashRank mirrors core's crashRank with the `rk.quantum = sim.Event{}`
// re-arm removed.
func (e *engine) crashRank(r int) {
	rk := &e.ranks[r]
	e.kernel.Cancel(rk.quantum)
	rk.state = 4
	if e.kernel.Live(rk.quantum) { // want `sim.Event handle rk.quantum used after Cancel`
		rk.state = 0
	}
}

// finishRank keeps the production lockstep re-zero: clean.
func (e *engine) finishRank(r int) {
	rk := &e.ranks[r]
	e.kernel.Cancel(rk.quantum)
	rk.quantum = sim.Event{}
	rk.state = 3
}
