// Package fixture exercises the handlesafe analyzer: long-lived handle
// stores and lexical use-after-Cancel.
package fixture

import "distws/internal/sim"

var globalHandle sim.Event // want `package-level var globalHandle stores a sim.Event handle`

var pending []sim.Event // want `package-level var pending stores a sim.Event handle`

type holder struct {
	quantum sim.Event // want `struct field holder.quantum stores a sim.Event handle`
	n       int
}

type handleSet map[int]sim.Event // want `type handleSet stores sim.Event handles`

// kernelRef holds only the kernel, not handles: clean.
type kernelRef struct{ k *sim.Kernel }

func useAfterCancel(k *sim.Kernel) bool {
	e := k.After(5, noop)
	k.Cancel(e)
	return k.Live(e) // want `sim.Event handle e used after Cancel`
}

func doubleCancel(k *sim.Kernel) {
	e := k.After(5, noop)
	k.Cancel(e)
	k.Cancel(e) // want `sim.Event handle e cancelled twice`
}

// rearmed reassigns after Cancel, the engine's quantum idiom: clean.
func rearmed(k *sim.Kernel) bool {
	e := k.After(5, noop)
	k.Cancel(e)
	e = k.After(7, noop)
	return k.Live(e)
}

// stop cancels and re-zeroes a stored handle in lockstep: clean.
func (h *holder) stop(k *sim.Kernel) {
	k.Cancel(h.quantum)
	h.quantum = sim.Event{}
	_ = h.quantum
}

// localOnly never cancels: clean.
func localOnly(k *sim.Kernel) (sim.Time, bool) {
	e := k.After(3, noop)
	return k.When(e)
}

func noop() {}
