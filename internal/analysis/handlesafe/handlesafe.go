// Package handlesafe enforces the arena event-handle discipline of
// internal/sim: an Event is a generation-stamped ticket, valid from the
// scheduling call until the event dispatches or is cancelled. Because
// every operation on a stale handle is a deliberate no-op (the arena
// recycles slots), misuse is silent — a handle parked in a global or a
// long-lived struct field, or read after it was passed to Cancel, keeps
// "working" while quietly referring to nothing (or, worse, to a
// recycled slot of the same generation parity). Before the kernel is
// sharded those latent bugs must be visible, so the analyzer makes the
// two risky shapes diagnostics:
//
//   - a package-level variable, struct field or named type whose type
//     contains sim.Event: handles must not outlive the scope that
//     scheduled them unless the owner re-arms or zeroes them in lockstep
//     (the engine's per-rank quantum field does, and carries the one
//     allowlist entry);
//   - a lexical use of a handle expression after it was passed to
//     Kernel.Cancel, before any reassignment: the cancelled ticket is
//     dead, and reading or re-cancelling it is almost always a stale
//     copy/paste of the live-handle pattern.
//
// The defining package (internal/sim) is exempt — it is the arena.
package handlesafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"distws/internal/analysis"
)

// New returns the analyzer. ownerPath is the import path of the package
// defining the Event handle type (internal/sim in production; fixtures
// impersonate it).
func New(ownerPath string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "handlesafe",
		Doc:  "flags sim.Event handles stored in globals/struct fields or used after Cancel",
	}
	a.Run = func(pass *analysis.Pass) error {
		if analysis.PathMatches(pass.ImportPath, []string{ownerPath}) {
			return nil // the arena itself manages raw handles
		}
		c := &checker{pass: pass, ownerPath: ownerPath}
		for _, f := range pass.Files {
			c.checkStores(f)
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						c.checkUseAfterCancel(n.Body)
					}
					return false
				}
				return true
			})
		}
		return nil
	}
	return a
}

type checker struct {
	pass      *analysis.Pass
	ownerPath string
}

// isEvent reports whether t is the owner package's Event type.
func (c *checker) isEvent(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == c.ownerPath && obj.Name() == "Event"
}

// containsEvent reports whether t structurally contains the Event type.
// Expansion stops at named types other than Event itself: a named type
// embedding a handle is flagged at its own declaration, so uses of it
// do not cascade into one diagnostic per mention.
func (c *checker) containsEvent(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		return c.isEvent(t)
	case *types.Pointer:
		return c.containsEvent(t.Elem(), seen)
	case *types.Slice:
		return c.containsEvent(t.Elem(), seen)
	case *types.Array:
		return c.containsEvent(t.Elem(), seen)
	case *types.Map:
		return c.containsEvent(t.Key(), seen) || c.containsEvent(t.Elem(), seen)
	case *types.Chan:
		return c.containsEvent(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if c.containsEvent(t.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// checkStores flags package-level variables and struct fields whose
// type holds an Event handle.
func (c *checker) checkStores(f *ast.File) {
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			switch spec := spec.(type) {
			case *ast.ValueSpec:
				if gd.Tok != token.VAR {
					continue
				}
				for _, name := range spec.Names {
					obj, ok := c.pass.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if c.containsEvent(obj.Type(), map[types.Type]bool{}) {
						c.pass.Reportf(name.Pos(),
							"package-level var %s stores a sim.Event handle: handles go stale silently once the event dispatches or its slot is recycled; keep them in the scheduling scope",
							name.Name)
					}
				}
			case *ast.TypeSpec:
				c.checkTypeSpec(spec)
			}
		}
	}
}

func (c *checker) checkTypeSpec(spec *ast.TypeSpec) {
	obj, ok := c.pass.Info.Defs[spec.Name].(*types.TypeName)
	if !ok {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		// Non-struct named type (slice, map, array of handles).
		if c.containsEvent(obj.Type().Underlying(), map[types.Type]bool{}) {
			c.pass.Reportf(spec.Pos(),
				"type %s stores sim.Event handles in a long-lived container: handles go stale silently; track liveness with Kernel.Live or re-arm in lockstep",
				spec.Name.Name)
		}
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if c.containsEvent(field.Type(), map[types.Type]bool{}) {
			c.pass.Reportf(fieldPos(spec, field, st), // best-effort position
				"struct field %s.%s stores a sim.Event handle: a stale handle is a silent no-op; owners must cancel and re-zero it in lockstep or the field lies about liveness",
				spec.Name.Name, field.Name())
		}
	}
}

// fieldPos locates the AST position of a struct field by name, falling
// back to the type spec.
func fieldPos(spec *ast.TypeSpec, field *types.Var, _ *types.Struct) token.Pos {
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return spec.Pos()
	}
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == field.Name() {
				return n.Pos()
			}
		}
	}
	return spec.Pos()
}

// --- use-after-Cancel -------------------------------------------------

// handleEvent is one lexical occurrence of a handle expression.
type handleEvent struct {
	pos  token.Pos
	kind int // 0 use, 1 cancel, 2 kill (reassignment)
	key  string
}

const (
	evUse = iota
	evCancel
	evKill
)

// checkUseAfterCancel scans one function scope lexically: after a
// handle expression is passed to Kernel.Cancel, any further read of the
// same expression (including a second Cancel) is flagged until an
// assignment re-arms it. Function literals are independent scopes —
// cross-closure flow is out of lexical reach and stays unflagged.
func (c *checker) checkUseAfterCancel(body *ast.BlockStmt) {
	var events []handleEvent
	// Expressions already accounted for structurally (Cancel arguments,
	// assignment targets) are excluded from the generic read walk.
	skip := map[ast.Expr]bool{}

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkUseAfterCancel(n.Body)
			return false
		case *ast.CallExpr:
			if c.isCancelCall(n) && len(n.Args) == 1 {
				if key, ok := c.handleKey(n.Args[0]); ok {
					// The cancel takes effect after its argument is read:
					// anchor it at the argument's end.
					events = append(events, handleEvent{n.Args[0].End(), evCancel, key})
					skip[n.Args[0]] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if key, ok := c.handleKey(lhs); ok {
					events = append(events, handleEvent{lhs.Pos(), evKill, key})
					skip[lhs] = true
				}
			}
			// RHS reads are collected by the expression walk below.
		}
		if e, ok := n.(ast.Expr); ok && !skip[e] {
			if key, ok2 := c.handleKey(e); ok2 {
				events = append(events, handleEvent{e.Pos(), evUse, key})
				return false // don't also record sub-expressions
			}
		}
		return true
	}
	ast.Inspect(body, visit)

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	cancelled := map[string]token.Pos{}
	for _, e := range events {
		switch e.kind {
		case evCancel:
			if _, dead := cancelled[e.key]; dead {
				c.pass.Reportf(e.pos,
					"sim.Event handle %s cancelled twice without reassignment: the second Cancel is a silent no-op on a dead ticket", e.key)
				continue
			}
			cancelled[e.key] = e.pos
		case evKill:
			delete(cancelled, e.key)
		case evUse:
			if _, dead := cancelled[e.key]; dead {
				c.pass.Reportf(e.pos,
					"sim.Event handle %s used after Cancel: the handle is stale and every operation on it is a silent no-op; reassign or zero it first", e.key)
				delete(cancelled, e.key) // one report per cancel
			}
		}
	}
}

// isCancelCall reports whether call invokes the owner kernel's Cancel.
func (c *checker) isCancelCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Cancel" {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == c.ownerPath
}

// handleKey renders an ident/selector expression of type Event to a
// stable string key, mirroring lockcheck's receiver keys. Composite
// expressions (calls, literals) are not tracked.
func (c *checker) handleKey(e ast.Expr) (string, bool) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return "", false
	}
	tv, ok := c.pass.Info.Types[e]
	if !ok || !c.isEvent(tv.Type) {
		return "", false
	}
	return types.ExprString(e), true
}
