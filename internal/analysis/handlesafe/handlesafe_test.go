package handlesafe_test

import (
	"testing"

	"distws/internal/analysis/analysistest"
	"distws/internal/analysis/handlesafe"
)

const simPath = "distws/internal/sim"

func TestHandlesafeFixture(t *testing.T) {
	analysistest.Run(t, handlesafe.New(simPath), "testdata/basic", "fix/handlesafe")
}

// TestHandlesafeSeededViolation proves the analyzer fires on a broken
// copy of the real per-rank quantum-handle code from internal/core.
func TestHandlesafeSeededViolation(t *testing.T) {
	analysistest.Run(t, handlesafe.New(simPath), "testdata/seeded", "fix/handlesafeseeded")
}
