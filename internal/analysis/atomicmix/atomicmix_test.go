package atomicmix_test

import (
	"testing"

	"distws/internal/analysis/analysistest"
	"distws/internal/analysis/atomicmix"
)

func TestMixedAtomicAccess(t *testing.T) {
	analysistest.Run(t, atomicmix.New(), "testdata/mixed", "distws/internal/deque")
}
