// Package fixture exercises the atomicmix analyzer: objects accessed
// both through sync/atomic and directly must be reported at every
// plain access; consistently-atomic and consistently-plain objects
// must stay silent.
package fixture

import "sync/atomic"

type counters struct {
	mixed    int64
	allAtom  uint64
	allPlain int64
	typed    atomic.Int64
}

var globalMixed int64

func atomicSide(c *counters) {
	atomic.AddInt64(&c.mixed, 1)
	atomic.AddUint64(&c.allAtom, 1)
	atomic.AddInt64(&globalMixed, 1)
	c.typed.Add(1)
}

func plainSide(c *counters) int64 {
	n := c.mixed // want `mixed is accessed atomically`
	c.mixed = 0  // want `mixed is accessed atomically`
	c.allPlain++
	return n + globalMixed // want `globalMixed is accessed atomically`
}

func consistentReads(c *counters) uint64 {
	return atomic.LoadUint64(&c.allAtom) + uint64(c.typed.Load())
}

func freshValueInitIsFine() *counters {
	return &counters{mixed: 0, allAtom: 0}
}
