// Package atomicmix enforces a single access discipline per shared
// word: a variable that is touched through sync/atomic anywhere in a
// package must be touched through sync/atomic everywhere in that
// package. A plain load racing an atomic store is a data race the Go
// memory model gives no guarantees about, and it is exactly the class
// of bug a lock-free structure like the Chase–Lev deque
// (internal/deque) or the runtime's termination counter (internal/rt)
// would exhibit only under rare interleavings.
//
// The analyzer records every struct field and package-level variable
// whose address is passed to a sync/atomic operation
// (Load*/Store*/Add*/Swap*/CompareAndSwap*/And*/Or*), then reports
// every other plain read or write of the same object in the package.
// Fields of the method-based atomic types (atomic.Int64,
// atomic.Pointer, ...) cannot mix by construction and are the
// recommended fix.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"distws/internal/analysis"
)

// New returns the analyzer. It has no configuration: the invariant is
// repo-wide.
func New() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "atomicmix",
		Doc:  "flags variables accessed both via sync/atomic and via plain loads/stores",
	}
	a.Run = func(pass *analysis.Pass) error {
		atomicVars := make(map[*types.Var]token.Pos) // first atomic access
		atomicOperands := make(map[ast.Expr]bool)    // the x in atomic.Op(&x, ...)

		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicOp(pass, call) || len(call.Args) == 0 {
					return true
				}
				addr, ok := call.Args[0].(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				if v := referencedVar(pass, addr.X); v != nil {
					if _, seen := atomicVars[v]; !seen {
						atomicVars[v] = addr.X.Pos()
					}
					atomicOperands[addr.X] = true
				}
				return true
			})
		}
		if len(atomicVars) == 0 {
			return nil
		}

		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				expr, ok := n.(ast.Expr)
				if !ok || atomicOperands[expr] {
					return true
				}
				v := referencedVar(pass, expr)
				if v == nil {
					return true
				}
				if first, ok := atomicVars[v]; ok {
					// Selectors contain an ident that would re-match;
					// claim the whole expression so each access
					// reports once.
					if se, isSel := n.(*ast.SelectorExpr); isSel {
						atomicOperands[se.Sel] = true
					}
					pass.Reportf(expr.Pos(),
						"%s is accessed atomically (first at %s) but plainly here: mixed atomic/non-atomic access is a data race; use sync/atomic (or an atomic.%s field) for every access",
						v.Name(), pass.Fset.Position(first), suggestType(v))
				}
				return true
			})
		}
		return nil
	}
	return a
}

// isAtomicOp reports whether call invokes a sync/atomic function that
// operates on a caller-supplied address.
func isAtomicOp(pass *analysis.Pass, call *ast.CallExpr) bool {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[se.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// referencedVar resolves an expression to the struct field or
// package-level variable it denotes, or nil.
func referencedVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			return sel.Obj().(*types.Var)
		}
		// Package-qualified var (pkg.V): Sel resolves through Uses.
		if v, ok := pass.Info.Uses[e.Sel].(*types.Var); ok && isPackageLevel(v) {
			return v
		}
	case *ast.Ident:
		// A bare ident resolving to a field occurs only as a composite
		// literal key — initialization of a not-yet-shared value, which
		// is fine — so only package-level variables count here.
		if v, ok := pass.Info.Uses[e].(*types.Var); ok && isPackageLevel(v) {
			return v
		}
	}
	return nil
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// suggestType names the method-based atomic type matching the
// variable's underlying type, defaulting to Int64.
func suggestType(v *types.Var) string {
	switch t := v.Type().Underlying().(type) {
	case *types.Basic:
		switch t.Kind() {
		case types.Int32:
			return "Int32"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		case types.Bool:
			return "Bool"
		}
	case *types.Pointer:
		return "Pointer"
	}
	return "Int64"
}
