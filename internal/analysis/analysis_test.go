package analysis

import (
	"testing"
)

func TestPathMatches(t *testing.T) {
	cases := []struct {
		path     string
		prefixes []string
		want     bool
	}{
		{"distws/internal/rng", []string{"distws/internal/rng"}, true},
		{"distws/internal/rng/sub", []string{"distws/internal/rng"}, true},
		{"distws/internal/rngx", []string{"distws/internal/rng"}, false},
		{"distws/internal/sim", []string{"distws/internal"}, true},
		{"distws/cmd/uts", []string{"distws/internal"}, false},
		{"anything", nil, false},
	}
	for _, c := range cases {
		if got := PathMatches(c.path, c.prefixes); got != c.want {
			t.Errorf("PathMatches(%q, %v) = %v, want %v", c.path, c.prefixes, got, c.want)
		}
	}
}

// TestLoadTypeChecksModulePackage loads a real module package through
// the go list + export-data pipeline and checks the type information
// is populated — the property every analyzer depends on.
func TestLoadTypeChecksModulePackage(t *testing.T) {
	pkgs, err := Load(".", "distws/internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "distws/internal/rng" || p.Types.Name() != "rng" {
		t.Fatalf("loaded %q (package %s)", p.ImportPath, p.Types.Name())
	}
	if len(p.Info.Defs) == 0 || len(p.Info.Uses) == 0 {
		t.Fatal("type info not populated")
	}
	if p.Types.Scope().Lookup("Xoshiro256") == nil {
		t.Fatal("exported type Xoshiro256 not found in package scope")
	}
}

// TestLoadDirImportPathOverride checks fixtures can impersonate module
// paths, which the allowlist-sensitive analyzers rely on.
func TestLoadDirImportPathOverride(t *testing.T) {
	pkg, err := LoadDir("../rng", "distws/internal/fake")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.ImportPath != "distws/internal/fake" {
		t.Fatalf("ImportPath = %q", pkg.ImportPath)
	}
	if pkg.Fset == nil || len(pkg.Files) == 0 {
		t.Fatal("no files loaded")
	}
}
