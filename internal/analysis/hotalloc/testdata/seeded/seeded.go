// Package seeded is a deliberately broken copy of the topology latency
// hot path (internal/topology cachedLatency.Latency): the dense
// distance cache was swapped for a map walk, a debug trace string was
// added, and the jitter adjustment was wrapped in a capturing closure.
// All three allocate per Latency call — the exact per-event cost the
// 0-alloc gate exists to keep out — and the analyzer must flag each.
package seeded

import "fmt"

type latency struct {
	base  int64
	cache map[int]int64
	trace []string
}

// Latency is the configured hot root: it runs once per modeled message.
func (l *latency) Latency(from, to int) int64 {
	key := from<<16 | to
	for k, v := range l.cache { // want `hot path ranges over a map`
		if k == key {
			return v
		}
	}
	l.trace = append(l.trace, fmt.Sprintf("miss %d->%d", from, to)) // want `hot path calls fmt.Sprintf`
	d := l.base
	adjust := func() int64 { return d + int64(from-to) } // want `hot path constructs a capturing closure`
	v := adjust()
	l.cache[key] = v
	return v
}
