// Package fixture exercises the hotalloc analyzer: the four allocation
// shapes in functions reachable from the configured hot root, and the
// exemptions (panic arguments, String methods, unreachable functions).
package fixture

import "fmt"

type kernel struct {
	n     int
	names map[int]string
}

// step is the configured hot root.
func (k *kernel) step() {
	k.hot()
	_ = k.String()
}

// hot is reachable from the root: every allocation shape fires.
func (k *kernel) hot() {
	msg := fmt.Sprintf("n=%d", k.n) // want `hot path calls fmt.Sprintf`
	_ = msg
	for id := range k.names { // want `hot path ranges over a map`
		_ = id
	}
	n := k.n
	f := func() int { return n } // want `hot path constructs a capturing closure`
	_ = f()
	g := func() int { return 42 } // non-capturing: static, clean
	_ = g()
	box(k.n)  // want `hot path boxes int into an interface argument`
	box(&k.n) // pointer-shaped: clean
	if k.n < 0 {
		panic(fmt.Sprintf("bad n %d", k.n)) // panic path: exempt
	}
}

// box accepts an interface; passing it a non-pointer value allocates.
func box(v any) { _ = v }

// String is reachable but exempt: diagnostic rendering is cold.
func (k *kernel) String() string { return fmt.Sprintf("kernel(%d)", k.n) }

// cold is not reachable from the root: its fmt call is not reported.
func (k *kernel) cold() string { return fmt.Sprint(k.n) }
