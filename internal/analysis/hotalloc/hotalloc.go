// Package hotalloc guards the simulator's 0-alloc contract. The
// benchmark gate (make bench-gate) proves the hot packages allocate
// zero bytes per simulated event, but only for the configurations the
// benchmarks happen to exercise; a new allocation on an unbenchmarked
// branch ships silently and shows up later as GC pressure in the exact
// experiments the paper's figures depend on. This analyzer makes the
// contract structural: every function reachable from a configured hot
// root must avoid the four allocation shapes that creep into Go hot
// paths —
//
//   - fmt calls: every Sprintf/Errorf formats into a fresh string;
//   - capturing function literals: each construction heap-allocates
//     the capture record;
//   - interface boxing: passing a non-pointer-shaped concrete value
//     (int, struct, slice, string) as an interface argument allocates
//     the box; pointers, maps, chans and funcs are exempt because the
//     word fits the interface data slot;
//   - map iteration: order is nondeterministic, which the determinism
//     contract forbids on the hot path, and the hash walk is the
//     slowest way to visit a dense rank set.
//
// Reachability flows through the module call graph, including closure
// bodies. panic arguments are exempt (a panicking path is already
// dead), as are String/Error methods (cold diagnostic rendering) —
// traversal does not descend through them either.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"distws/internal/analysis"
)

// New returns the analyzer. roots lists the hot entry points as
// types.Func FullNames (e.g. "(*distws/internal/sim.Kernel).Run");
// packages gates which packages' declarations are checked.
func New(roots []string, packages []string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "hotalloc",
		Doc:  "flags allocation shapes (fmt, capturing closures, boxing, map ranges) reachable from 0-alloc hot roots",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !analysis.PathMatches(pass.ImportPath, packages) {
			return nil
		}
		var rootFns []*types.Func
		for _, name := range roots {
			fn := pass.Graph.Lookup(name)
			if fn == nil {
				return fmt.Errorf("hotalloc: root %q does not resolve to a declared function", name)
			}
			rootFns = append(rootFns, fn)
		}
		hot := hotReachable(pass.Graph, rootFns)
		c := &checker{pass: pass}
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok || !hot[fn] || isStringer(fn) {
					continue
				}
				c.checkBody(fd.Body)
			}
		}
		return nil
	}
	return a
}

// hotReachable walks the call graph forward from the roots, but does
// not descend through String/Error methods: what only diagnostic
// rendering reaches is cold by definition.
func hotReachable(g *analysis.CallGraph, roots []*types.Func) map[*types.Func]bool {
	reach := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, r := range roots {
		if !reach[r] {
			reach[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if isStringer(fn) {
			continue
		}
		for _, e := range g.Edges(fn) {
			if !reach[e.Callee] {
				reach[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return reach
}

// isStringer reports whether fn is a String or Error rendering method.
func isStringer(fn *types.Func) bool {
	if fn.Name() != "String" && fn.Name() != "Error" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && sig.Params().Len() == 0
}

type checker struct {
	pass *analysis.Pass
}

// checkBody walks one hot function body for the four allocation shapes.
func (c *checker) checkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(c.pass.Info, n) {
				return false // a panicking path is already dead
			}
			return c.checkCall(n)
		case *ast.RangeStmt:
			if tv, ok := c.pass.Info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					c.pass.Reportf(n.Pos(),
						"hot path ranges over a map: iteration order is nondeterministic and the hash walk is the slowest way to visit the set; use a dense slice")
				}
			}
		case *ast.FuncLit:
			if caps := c.litCaptures(n); len(caps) > 0 {
				c.pass.Reportf(n.Pos(),
					"hot path constructs a capturing closure (captures %s): each construction heap-allocates the capture record; hoist it to setup or pass state explicitly",
					caps[0])
			}
		}
		return true
	})
}

// checkCall flags fmt calls and interface-boxing arguments; the return
// value tells the walk whether to descend into the call's children.
func (c *checker) checkCall(call *ast.CallExpr) bool {
	if fn := calleeFunc(c.pass.Info, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			c.pass.Reportf(call.Pos(),
				"hot path calls fmt.%s: formatting allocates on every call; preformat in setup or use the trace ring", fn.Name())
			return true // boxing into fmt's variadic is subsumed by this report
		}
	}
	tv, ok := c.pass.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		// A conversion T(x): boxing only if T is an interface.
		if ok && len(call.Args) == 1 {
			if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
				c.checkBox(call.Args[0])
			}
		}
		return true
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return true // builtin or invalid
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue // arg... spread: already a slice, no per-element box
		}
		if _, isIface := pt.Underlying().(*types.Interface); isIface {
			c.checkBox(arg)
		}
	}
	return true
}

// checkBox reports when arg's concrete value cannot ride in the
// interface data word and therefore allocates at the conversion.
func (c *checker) checkBox(arg ast.Expr) {
	tv, ok := c.pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Interface:
		return // already boxed
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: fits the data word
	}
	c.pass.Reportf(arg.Pos(),
		"hot path boxes %s into an interface argument: the conversion allocates; take a pointer or a concrete parameter",
		types.TypeString(t, types.RelativeTo(c.pass.Pkg)))
}

// litCaptures returns the names of variables a function literal
// captures from enclosing scopes (package-level state is static and
// does not count).
func (c *checker) litCaptures(lit *ast.FuncLit) []string {
	var caps []string
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := c.pass.Info.Uses[id].(*types.Var)
		if !ok || seen[obj] || obj.IsField() {
			return true
		}
		if obj.Pkg() == nil || obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		if obj.Pos() < lit.Pos() {
			seen[obj] = true
			caps = append(caps, obj.Name())
		}
		return true
	})
	return caps
}

// isPanic reports whether call is the panic builtin.
func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
