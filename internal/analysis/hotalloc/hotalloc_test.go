package hotalloc_test

import (
	"testing"

	"distws/internal/analysis/analysistest"
	"distws/internal/analysis/hotalloc"
)

func TestHotallocFixture(t *testing.T) {
	analysistest.Run(t,
		hotalloc.New([]string{"(*fix/hotalloc.kernel).step"}, []string{"fix/hotalloc"}),
		"testdata/basic", "fix/hotalloc")
}

// TestHotallocSeededViolation proves the analyzer fires on a broken
// copy of the real topology latency hot path.
func TestHotallocSeededViolation(t *testing.T) {
	analysistest.Run(t,
		hotalloc.New([]string{"(*fix/hotallocseeded.latency).Latency"}, []string{"fix/hotallocseeded"}),
		"testdata/seeded", "fix/hotallocseeded")
}
