package poolcheck_test

import (
	"testing"

	"distws/internal/analysis/analysistest"
	"distws/internal/analysis/poolcheck"
)

const commPath = "distws/internal/comm"

func TestPoolcheckFixture(t *testing.T) {
	analysistest.Run(t, poolcheck.New(commPath, []string{"fix/poolcheck"}),
		"testdata/basic", "fix/poolcheck")
}

// TestPoolcheckSeededViolation proves the analyzer fires on broken
// copies of the three real drain shapes from internal/core and
// internal/dagws.
func TestPoolcheckSeededViolation(t *testing.T) {
	analysistest.Run(t, poolcheck.New(commPath, []string{"fix/poolcheckseeded"}),
		"testdata/seeded", "fix/poolcheckseeded")
}
