// Package poolcheck enforces the message-pool ownership discipline of
// internal/comm: a handler that drains its mailbox owns every message
// it receives and must resolve that ownership exactly once on every
// path — return the message to the pool with Network.Free, hand it to a
// consuming helper (one that frees it, like the engine's deadLetter),
// or transfer it onward (append it to a deferred batch). A path that
// drops an owned message leaks pool capacity; freeing twice corrupts
// the free list; touching a message after Free reads recycled memory.
// None of those fail loudly — Free is optional by API contract, so the
// steady-state pool just quietly degrades — which is exactly why the
// rule is machine-checked before the kernel refactor multiplies the
// handler paths.
//
// Ownership starts at the two draining shapes the runtime uses:
//
//	for _, m := range net.Poll(r) { ... }      // mailbox drain
//	msgs := rk.deferred; for _, m := range msgs // deferred-batch drain
//
// (a range over a local []*comm.Message variable). The consumer set is
// seeded with Network.Free and grown interprocedurally through the call
// graph: a function that passes its *Message parameter to a consumer is
// itself a consumer. The walker is path-sensitive over if/switch and
// flags three defects: leak (an iteration can end with the message
// still owned), double free, and use after free.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"distws/internal/analysis"
)

// New returns the analyzer. msgPath is the import path of the package
// defining Message/Network (internal/comm in production); packages
// lists the handler packages whose drains are checked.
func New(msgPath string, packages []string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "poolcheck",
		Doc:  "checks pooled comm.Message ownership: freed exactly once on every handler path",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !analysis.PathMatches(pass.ImportPath, packages) {
			return nil
		}
		c := &checker{pass: pass, msgPath: msgPath}
		c.consumers = c.buildConsumers()
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
					c.checkFunc(fd.Body)
					return false
				}
				return true
			})
		}
		return nil
	}
	return a
}

type checker struct {
	pass      *analysis.Pass
	msgPath   string
	consumers map[*types.Func]bool
}

// isMessagePtr reports whether t is *comm.Message.
func (c *checker) isMessagePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == c.msgPath && obj.Name() == "Message"
}

// isNetworkMethod reports whether fn is comm.Network's method of the
// given name.
func (c *checker) isNetworkMethod(fn *types.Func, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != c.msgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// buildConsumers seeds the consumer set with Network.Free and grows it
// to a fixpoint over the loaded declarations: a function that passes a
// *Message parameter to a known consumer consumes that parameter.
func (c *checker) buildConsumers() map[*types.Func]bool {
	consumers := make(map[*types.Func]bool)
	isConsumer := func(fn *types.Func) bool {
		return consumers[fn] || c.isNetworkMethod(fn, "Free") || c.isNetworkMethod(fn, "send")
	}
	g := c.pass.Graph
	for changed := true; changed; {
		changed = false
		for _, fn := range declaredFuncs(g) {
			if consumers[fn] {
				continue
			}
			d := g.Decl(fn)
			if d == nil || !c.passesParamToConsumer(d, isConsumer) {
				continue
			}
			consumers[fn] = true
			changed = true
		}
	}
	return consumers
}

// declaredFuncs enumerates every function with a body in the load.
func declaredFuncs(g *analysis.CallGraph) []*types.Func {
	var fns []*types.Func
	g.EachDecl(func(fn *types.Func, _ *analysis.FuncDecl) { fns = append(fns, fn) })
	return fns
}

// passesParamToConsumer reports whether the function forwards one of
// its *Message parameters to a consumer call.
func (c *checker) passesParamToConsumer(d *analysis.FuncDecl, isConsumer func(*types.Func) bool) bool {
	params := make(map[types.Object]bool)
	if d.Decl.Type.Params != nil {
		for _, field := range d.Decl.Type.Params.List {
			for _, name := range field.Names {
				obj := d.Pkg.Info.Defs[name]
				if obj != nil && c.isMessagePtr(obj.Type()) {
					params[obj] = true
				}
			}
		}
	}
	if len(params) == 0 {
		return false
	}
	found := false
	ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		callee := calleeFunc(d.Pkg.Info, call)
		if callee == nil || !isConsumer(callee) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && params[d.Pkg.Info.Uses[id]] {
				found = true
			}
		}
		return true
	})
	return found
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// --- ownership walk ----------------------------------------------------

// ownState is the lattice of what may have happened to the tracked
// message on some path, as a bitmask.
type ownState uint8

const (
	owned   ownState = 1 << iota // still this handler's responsibility
	freed                        // returned to the pool
	escaped                      // ownership transferred (stored/appended/returned)
)

// checkFunc finds the owning drains in one function body and walks each.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.checkFunc(lit.Body)
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		v := c.owningRangeVar(rs, body)
		if v == nil {
			return true
		}
		w := &walker{c: c, v: v}
		out, falls := w.stmts(rs.Body.List, owned, ctx{})
		if falls && out&owned != 0 {
			c.pass.Reportf(rs.Pos(),
				"message %s may leak: an iteration can end without Network.Free (or a consuming transfer) on every path", v.Name())
		}
		return true
	})
}

// owningRangeVar returns the loop variable object when the range
// statement is an owning drain: ranging over a Network.Poll call or
// over a local []*Message batch variable. body is the enclosing
// function (or literal) body, used to tell body-local batch variables
// from parameters.
func (c *checker) owningRangeVar(rs *ast.RangeStmt, body *ast.BlockStmt) *types.Var {
	if rs.Tok != token.DEFINE || rs.Value == nil {
		return nil
	}
	id, ok := rs.Value.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, ok := c.pass.Info.Defs[id].(*types.Var)
	if !ok || !c.isMessagePtr(v.Type()) {
		return nil
	}
	switch x := ast.Unparen(rs.X).(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(c.pass.Info, x); fn != nil && c.isNetworkMethod(fn, "Poll") {
			return v
		}
	case *ast.Ident:
		// A local batch variable (the deferred-drain idiom: the field is
		// swapped into a local and truncated before the walk). Fields,
		// package-level vars and parameters stay untracked: iterating
		// them is borrowing. A body-local's declaration sits after the
		// opening brace; a parameter's sits in the signature before it.
		obj, ok := c.pass.Info.Uses[x].(*types.Var)
		if ok && !obj.IsField() && obj.Parent() != obj.Pkg().Scope() && obj.Pos() > body.Pos() {
			if s, ok := obj.Type().(*types.Slice); ok && c.isMessagePtr(s.Elem()) {
				return v
			}
		}
	}
	return nil
}

// ctx tracks what break/continue refer to while walking nested
// statements: inside a nested loop they are local; inside a switch a
// bare break only exits the switch.
type ctx struct {
	loopDepth   int
	switchDepth int
}

type walker struct {
	c *checker
	v *types.Var
	// reported dedupes per-position reports.
	reported map[token.Pos]bool
}

func (w *walker) report(pos token.Pos, format string, args ...any) {
	if w.reported == nil {
		w.reported = make(map[token.Pos]bool)
	}
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.c.pass.Reportf(pos, format, args...)
}

// stmts walks a statement list. It returns the joined state on normal
// fall-through and whether fall-through is possible.
func (w *walker) stmts(list []ast.Stmt, in ownState, cx ctx) (ownState, bool) {
	st := in
	for _, s := range list {
		var falls bool
		st, falls = w.stmt(s, st, cx)
		if !falls {
			return st, false
		}
	}
	return st, true
}

// leakCheck reports a leak when an iteration-ending edge can still own
// the message.
func (w *walker) leakCheck(pos token.Pos, st ownState, what string) {
	if st&owned != 0 {
		w.report(pos, "message %s may leak: %s while still owned; free or transfer it first", w.v.Name(), what)
	}
}

func (w *walker) stmt(s ast.Stmt, in ownState, cx ctx) (ownState, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return w.expr(s.X, in), true
	case *ast.AssignStmt:
		st := in
		// A whole-RHS transfer (x = m, s.f = m, x[i] = m) moves ownership.
		for i, rhs := range s.Rhs {
			st = w.expr(rhs, st)
			if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && w.isVar(id) {
				if i < len(s.Lhs) && !isBlank(s.Lhs[i]) {
					st = transfer(st)
				}
			}
		}
		for _, lhs := range s.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && w.isVar(id) {
				// Rebinding the loop variable abandons tracking of the old
				// message; treat the old value as transferred.
				st = transfer(st)
				continue
			}
			st = w.expr(lhs, st)
		}
		return st, true
	case *ast.DeclStmt:
		st := in
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						st = w.expr(val, st)
						if id, ok := ast.Unparen(val).(*ast.Ident); ok && w.isVar(id) {
							st = transfer(st)
						}
					}
				}
			}
		}
		return st, true
	case *ast.ReturnStmt:
		st := in
		for _, r := range s.Results {
			st = w.expr(r, st)
			if id, ok := ast.Unparen(r).(*ast.Ident); ok && w.isVar(id) {
				st = transfer(st)
			}
		}
		w.leakCheck(s.Pos(), st, "return exits the drain")
		return st, false
	case *ast.BranchStmt:
		switch s.Tok {
		case token.CONTINUE:
			if cx.loopDepth == 0 {
				w.leakCheck(s.Pos(), in, "continue ends the iteration")
			}
			return in, false
		case token.BREAK:
			if cx.switchDepth > 0 {
				// Exits the enclosing switch only; rejoins the iteration.
				return in, true
			}
			if cx.loopDepth == 0 {
				w.leakCheck(s.Pos(), in, "break abandons the drain")
			}
			return in, false
		case token.GOTO:
			w.leakCheck(s.Pos(), in, "goto leaves the iteration")
			return in, false
		case token.FALLTHROUGH:
			return in, true
		}
		return in, true
	case *ast.IfStmt:
		st := in
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st, cx)
		}
		st = w.expr(s.Cond, st)
		thenSt, thenFalls := w.stmts(s.Body.List, st, cx)
		elseSt, elseFalls := st, true
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseSt, elseFalls = w.stmts(e.List, st, cx)
			default:
				elseSt, elseFalls = w.stmt(s.Else, st, cx)
			}
		}
		switch {
		case thenFalls && elseFalls:
			return thenSt | elseSt, true
		case thenFalls:
			return thenSt, true
		case elseFalls:
			return elseSt, true
		}
		return thenSt | elseSt, false
	case *ast.SwitchStmt:
		st := in
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st, cx)
		}
		if s.Tag != nil {
			st = w.expr(s.Tag, st)
		}
		return w.caseClauses(s.Body.List, st, cx)
	case *ast.TypeSwitchStmt:
		st := in
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st, cx)
		}
		st, _ = w.stmt(s.Assign, st, cx)
		return w.caseClauses(s.Body.List, st, cx)
	case *ast.BlockStmt:
		return w.stmts(s.List, in, cx)
	case *ast.ForStmt:
		st := in
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st, cx)
		}
		if s.Cond != nil {
			st = w.expr(s.Cond, st)
		}
		inner := cx
		inner.loopDepth++
		inner.switchDepth = 0
		bodySt, falls := w.stmts(s.Body.List, st, inner)
		if falls && s.Post != nil {
			bodySt, _ = w.stmt(s.Post, bodySt, inner)
		}
		return st | bodySt, true
	case *ast.RangeStmt:
		st := w.expr(s.X, in)
		inner := cx
		inner.loopDepth++
		inner.switchDepth = 0
		bodySt, _ := w.stmts(s.Body.List, st, inner)
		return st | bodySt, true
	case *ast.DeferStmt:
		// A deferred Free runs at function exit, not iteration end; it
		// neither discharges nor duplicates this iteration's obligation
		// reliably, so treat its uses like reads only.
		return w.exprUsesOnly(s.Call, in), true
	case *ast.GoStmt:
		return w.exprUsesOnly(s.Call, in), true
	case *ast.IncDecStmt:
		return w.expr(s.X, in), true
	case *ast.SendStmt:
		st := w.expr(s.Chan, in)
		st = w.expr(s.Value, st)
		if id, ok := ast.Unparen(s.Value).(*ast.Ident); ok && w.isVar(id) {
			st = transfer(st)
		}
		return st, true
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, in, cx)
	case *ast.EmptyStmt:
		return in, true
	default:
		// Unknown statement kind: scan for reads conservatively.
		st := in
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				st = w.expr(e, st)
				return false
			}
			return true
		})
		return st, true
	}
}

// caseClauses joins the states of all case bodies; a missing default
// contributes the pre-switch state.
func (w *walker) caseClauses(clauses []ast.Stmt, in ownState, cx ctx) (ownState, bool) {
	inner := cx
	inner.switchDepth++
	var out ownState
	falls := false
	hasDefault := false
	for _, cl := range clauses {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		st := in
		for _, e := range cc.List {
			st = w.expr(e, st)
		}
		cst, cfalls := w.stmts(cc.Body, st, inner)
		if cfalls {
			out |= cst
			falls = true
		}
	}
	if !hasDefault {
		out |= in
		falls = true
	}
	if !falls {
		return in, false
	}
	return out, true
}

// transfer moves the owned component to escaped.
func transfer(st ownState) ownState {
	if st&owned != 0 {
		st = (st &^ owned) | escaped
	}
	return st
}

// isVar reports whether id denotes the tracked loop variable.
func (w *walker) isVar(id *ast.Ident) bool {
	return w.c.pass.Info.Uses[id] == w.v
}

// expr processes reads, consuming calls and append-transfers inside one
// expression, returning the updated state.
func (w *walker) expr(e ast.Expr, in ownState) ownState {
	if e == nil {
		return in
	}
	st := in
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a separate scope; checkFunc visits it
		case *ast.CallExpr:
			st = w.call(n, st)
			return false
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				st = w.expr(el, st)
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if id, ok := ast.Unparen(v).(*ast.Ident); ok && w.isVar(id) {
					st = transfer(st)
				}
			}
			return false
		case *ast.Ident:
			if w.isVar(n) {
				if st&freed != 0 {
					w.report(n.Pos(),
						"message %s used after Network.Free: the pool may have recycled it", w.v.Name())
					st &^= freed
				}
			}
		}
		return true
	})
	return st
}

// exprUsesOnly records reads without consuming (defer/go bodies).
func (w *walker) exprUsesOnly(e ast.Expr, in ownState) ownState {
	st := in
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && w.isVar(id) && st&freed != 0 {
			w.report(id.Pos(), "message %s used after Network.Free: the pool may have recycled it", w.v.Name())
			st &^= freed
		}
		return true
	})
	return st
}

// call handles one call expression: argument reads first, then the
// consumption effect when the callee is a consumer or append.
func (w *walker) call(call *ast.CallExpr, in ownState) ownState {
	st := w.expr(call.Fun, in)
	varArg := false
	var argPos token.Pos
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && w.isVar(id) {
			// Whether this read is a defect depends on the callee
			// (double free vs use after free); decide below.
			varArg = true
			argPos = id.Pos()
			continue
		}
		st = w.expr(arg, st)
	}
	if !varArg {
		return st
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := w.c.pass.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" {
			// append(batch, m): ownership transfers to the batch.
			if st&freed != 0 {
				w.report(argPos,
					"message %s used after Network.Free: the pool may have recycled it", w.v.Name())
				st &^= freed
			}
			return transfer(st)
		}
	}
	callee := calleeFunc(w.c.pass.Info, call)
	if callee != nil && (w.c.isNetworkMethod(callee, "Free") || w.c.isNetworkMethod(callee, "send") || w.c.consumers[callee]) {
		if st&(freed|escaped) != 0 {
			// Already freed or transferred — on every path if the owned
			// bit is gone, on some path if states merged at a join.
			w.report(call.Pos(), "message %s freed twice: every path must resolve ownership exactly once", w.v.Name())
		}
		return (st &^ owned) | freed
	}
	// Borrowed: the callee does not consume, so this is a plain read.
	if st&freed != 0 {
		w.report(argPos,
			"message %s used after Network.Free: the pool may have recycled it", w.v.Name())
		st &^= freed
	}
	return st
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
