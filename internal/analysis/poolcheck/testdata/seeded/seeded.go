// Package seeded is a deliberately broken copy of the runtime's three
// real drain shapes: the engine's onDelivery (crashed-corpse drain and
// one-sided inline serve, internal/core), its pollMailbox (deferred
// batch swap plus Poll walk), and the DAG scheduler's drain
// (internal/dagws). Each copy drops a Network.Free the production code
// performs (or, for dagws, reproduces the leak the analyzer was built
// to catch), and the analyzer must fire on every broken drain.
package seeded

import "distws/internal/comm"

const (
	rsWorking = iota
	rsCrashed
	rsDone
)

type rank struct {
	state    int
	loot     int
	misses   int
	deferred []*comm.Message
}

type engine struct {
	net   *comm.Network
	ranks []rank
}

// onDelivery mirrors core's onDelivery, with deadLetter's Free replaced
// by a non-consuming note in the crashed branch and the inline Free
// dropped from the one-sided steal-request arm.
func (e *engine) onDelivery(r int) {
	rk := &e.ranks[r]
	if rk.state == rsCrashed {
		for _, m := range e.net.Poll(r) { // want `message m may leak: an iteration can end without Network.Free`
			e.noteDead(m)
		}
		return
	}
	if rk.state == rsWorking {
		for _, m := range e.net.Poll(r) { // want `message m may leak: an iteration can end without Network.Free`
			if m.Tag == comm.TagStealRequest {
				e.handle(r, m)
			} else {
				rk.deferred = append(rk.deferred, m)
			}
		}
		return
	}
}

// pollMailbox keeps the deferred-batch swap intact but forgets the Free
// in the Poll walk.
func (e *engine) pollMailbox(r int) {
	rk := &e.ranks[r]
	if len(rk.deferred) > 0 {
		msgs := rk.deferred
		rk.deferred = rk.deferred[:0]
		for _, m := range msgs {
			e.handle(r, m)
			e.net.Free(m)
		}
	}
	for _, m := range e.net.Poll(r) { // want `message m may leak: an iteration can end without Network.Free`
		e.handle(r, m)
	}
}

// drain mirrors the DAG scheduler's drain, which polls and never frees.
func (e *engine) drain(r int) {
	rk := &e.ranks[r]
	for _, m := range e.net.Poll(r) { // want `message m may leak: an iteration can end without Network.Free`
		switch m.Tag {
		case comm.TagWork:
			if rk.state == rsDone {
				continue // want `message m may leak: continue ends the iteration while still owned`
			}
			rk.loot += len(m.Nodes)
		case comm.TagNoWork:
			rk.misses++
		}
	}
}

// handle borrows the message: it reads protocol fields only.
func (e *engine) handle(r int, m *comm.Message) {
	rk := &e.ranks[r]
	if m.Tag == comm.TagWork {
		rk.loot += len(m.Nodes)
	}
}

// noteDead borrows too — unlike core's deadLetter, it does not free.
func (e *engine) noteDead(m *comm.Message) {
	e.ranks[m.To].misses++
}
