// Package fixture exercises the poolcheck analyzer: every drained
// message must be freed or transferred exactly once on every path.
package fixture

import "distws/internal/comm"

type handler struct {
	net      *comm.Network
	deferred []*comm.Message
}

// drainClean frees on every switch arm: clean.
func (h *handler) drainClean(r int) {
	for _, m := range h.net.Poll(r) {
		switch m.Tag {
		case comm.TagStealRequest:
			h.inspect(m)
			h.net.Free(m)
		default:
			h.net.Free(m)
		}
	}
}

// oneSided mirrors the engine's onDelivery: steal requests are served
// and freed inline, everything else transfers to the deferred batch.
// Both paths resolve ownership: clean.
func (h *handler) oneSided(r int) {
	for _, m := range h.net.Poll(r) {
		if m.Tag == comm.TagStealRequest {
			h.inspect(m)
			h.net.Free(m)
		} else {
			h.deferred = append(h.deferred, m)
		}
	}
}

// deferredDrain mirrors pollMailbox's batch swap: the swapped local is
// an owning batch, and each message is freed after handling: clean.
func (h *handler) deferredDrain() {
	msgs := h.deferred
	h.deferred = h.deferred[:0]
	for _, m := range msgs {
		h.inspect(m)
		h.net.Free(m)
	}
}

// viaConsumer discharges ownership through a helper the call graph
// proves forwards to Network.Free: clean.
func (h *handler) viaConsumer(r int) {
	for _, m := range h.net.Poll(r) {
		h.discard(m)
	}
}

// discard is an interprocedurally-derived consumer.
func (h *handler) discard(m *comm.Message) {
	h.net.Free(m)
}

// inspect borrows: it reads but never frees.
func (h *handler) inspect(m *comm.Message) int { return m.From }

// borrowWalk ranges a struct field, not a swapped local, so iteration
// is borrowing: clean.
func (h *handler) borrowWalk() int {
	total := 0
	for _, m := range h.deferred {
		total += m.Size
	}
	return total
}

// leakOnContinue skips the free on the no-work arm.
func (h *handler) leakOnContinue(r int) {
	for _, m := range h.net.Poll(r) {
		if m.Tag == comm.TagNoWork {
			continue // want `message m may leak: continue ends the iteration while still owned`
		}
		h.net.Free(m)
	}
}

// leakAtEnd frees only one tag; the others fall off the iteration owned.
func (h *handler) leakAtEnd(r int) {
	for _, m := range h.net.Poll(r) { // want `message m may leak: an iteration can end without Network.Free`
		if m.Tag == comm.TagWork {
			h.net.Free(m)
		}
	}
}

// doubleFree resolves ownership twice on the same path.
func (h *handler) doubleFree(r int) {
	for _, m := range h.net.Poll(r) {
		h.net.Free(m)
		h.net.Free(m) // want `message m freed twice`
	}
}

// branchDoubleFree frees on one path, then again unconditionally.
func (h *handler) branchDoubleFree(r int) {
	for _, m := range h.net.Poll(r) {
		if m.Tag == comm.TagToken {
			h.net.Free(m)
		}
		h.net.Free(m) // want `message m freed twice`
	}
}

// useAfterFree reads a field of a recycled message.
func (h *handler) useAfterFree(r int) int {
	n := 0
	for _, m := range h.net.Poll(r) {
		h.net.Free(m)
		n += m.Size // want `message m used after Network.Free`
	}
	return n
}

// leakOnReturn exits the drain with the current message still owned.
func (h *handler) leakOnReturn(r int) {
	for _, m := range h.net.Poll(r) {
		if m.Tag == comm.TagTerminate {
			return // want `message m may leak: return exits the drain`
		}
		h.net.Free(m)
	}
}
