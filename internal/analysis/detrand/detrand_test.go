package detrand_test

import (
	"testing"

	"distws/internal/analysis/analysistest"
	"distws/internal/analysis/detrand"
)

func TestFlagsMathRandAndTimeSeeds(t *testing.T) {
	a := detrand.New([]string{"distws/internal/rng"})
	analysistest.Run(t, a, "testdata/bad", "distws/internal/victim")
}

func TestExemptPackageMayUseMathRand(t *testing.T) {
	a := detrand.New([]string{"distws/internal/rng"})
	analysistest.Run(t, a, "testdata/exempt", "distws/internal/rng")
}
