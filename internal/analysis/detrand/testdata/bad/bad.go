// Package fixture exercises the detrand analyzer: every line below
// marked `want` must be reported, every other line must stay silent.
package fixture

import (
	"math/rand"
	"time"

	"distws/internal/rng"
)

func globalRand() int {
	rand.Seed(42)        // want `math/rand`
	return rand.Intn(10) // want `math/rand`
}

func localButForbidden() float64 {
	r := rand.New(rand.NewSource(1)) // want `math/rand` `math/rand`
	return r.Float64()               // want `math/rand`
}

func timeSeeded() *rng.Xoshiro256 {
	return rng.New(uint64(time.Now().UnixNano())) // want `time-seeded`
}

// timeSeededIndirect is a known limitation: the analyzer has no
// dataflow, so a wall-clock seed laundered through a local variable is
// not reported (walltime catches the time.Now itself in virtual-time
// packages).
func timeSeededIndirect() uint64 {
	seed := time.Now()
	g := rng.New(uint64(seed.Unix()))
	return g.Uint64()
}

func fine() uint64 {
	g := rng.New(7)
	return g.Uint64()
}

// wallSeed hides the clock read behind a helper; the call graph still
// sees it.
func wallSeed() uint64 { return uint64(time.Now().UnixNano()) }

// wrapSeed adds a second hop.
func wrapSeed() uint64 { return wallSeed() + 1 }

func timeSeededViaHelper() *rng.Xoshiro256 {
	return rng.New(wallSeed()) // want `time-seeded`
}

func timeSeededViaTwoHops() *rng.Xoshiro256 {
	return rng.New(wrapSeed()) // want `time-seeded`
}

// fineHelper never touches the clock, so seeding through it is clean.
func fineHelper() uint64 { return 9 }

func fineViaHelper() *rng.Xoshiro256 {
	return rng.New(fineHelper())
}
