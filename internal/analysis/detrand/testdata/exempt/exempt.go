// Package fixture stands in for internal/rng itself: with its import
// path on the exempt list, math/rand references are allowed, but
// time-seeding a constructor is still reported — there is no blessed
// home for a wall-clock seed.
package fixture

import (
	"math/rand"
	"time"
)

func reference() int {
	return rand.Intn(3)
}

func stillNoClockSeeds() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `time-seeded`
}
