// Package detrand enforces the repository's central determinism
// invariant: every random draw flows through internal/rng's explicit,
// seeded generators. A single math/rand call — global state seeded
// from who-knows-where — or a generator seeded from the wall clock
// makes a simulation no longer a pure function of its configured seed,
// silently invalidating every result in EXPERIMENTS.md.
//
// The analyzer reports:
//
//   - any reference to math/rand or math/rand/v2 outside the exempt
//     packages (internal/rng is the only intended home for raw
//     generator machinery);
//   - any generator constructor — rng.New*, rand.New* — whose seed
//     argument derives from time.Now, in every package. The derivation
//     is interprocedural: a seed computed by calling a helper that
//     transitively reaches time.Now through the module call graph is
//     reported at the constructor, so hiding the clock read one or two
//     functions away does not launder it.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"distws/internal/analysis"
)

// rngPath is the one blessed generator package.
const rngPath = "distws/internal/rng"

// New returns the analyzer. Packages matching an exempt prefix may
// reference math/rand; the time-seeding check has no exemptions.
func New(exempt []string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "detrand",
		Doc:  "flags math/rand use outside internal/rng and time-seeded RNG constructors",
	}
	a.Run = func(pass *analysis.Pass) error {
		checkRandRefs := !analysis.PathMatches(pass.ImportPath, exempt)
		if checkRandRefs {
			for id, obj := range pass.Info.Uses {
				if p := objPkgPath(obj); p == "math/rand" || p == "math/rand/v2" {
					pass.Reportf(id.Pos(),
						"reference to %s.%s: simulator randomness must flow through internal/rng's seeded streams",
						p, obj.Name())
				}
			}
		}
		// Functions that transitively reach time.Now: a seed built by
		// calling one of these is wall-clock-derived even though no
		// time.Now appears lexically in the argument.
		reachesNow := pass.Graph.Reachers(func(fn *types.Func) bool {
			return fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now"
		})
		// Nested constructors (rand.New(rand.NewSource(...))) would
		// report the same time.Now twice; dedupe by position.
		reported := make(map[token.Pos]bool)
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isRNGConstructor(pass, call) {
					return true
				}
				for _, arg := range call.Args {
					if pos, ok := usesWallClock(pass, reachesNow, arg); ok && !reported[pos] {
						reported[pos] = true
						pass.Reportf(pos,
							"time-seeded RNG: seed derives from time.Now, so runs are not reproducible; derive seeds from configuration")
						break
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isRNGConstructor reports whether call invokes a New* function of
// internal/rng, math/rand or math/rand/v2.
func isRNGConstructor(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	obj, ok := pass.Info.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	switch objPkgPath(obj) {
	case rngPath, "math/rand", "math/rand/v2":
	default:
		return false
	}
	name := obj.Name()
	return name == "New" || (len(name) > 3 && name[:3] == "New")
}

// usesWallClock reports whether the expression tree references
// time.Now — directly, through a conversion chain such as
// uint64(time.Now().UnixNano()), or by calling a function that
// transitively reaches time.Now (reachesNow, from the call graph).
func usesWallClock(pass *analysis.Pass, reachesNow map[*types.Func]bool, e ast.Expr) (pos token.Pos, found bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if objPkgPath(obj) == "time" && obj.Name() == "Now" {
			pos, found = id.Pos(), true
			return false
		}
		if fn, ok := obj.(*types.Func); ok && reachesNow[fn] {
			pos, found = id.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
