// Package callgraph is a fixture exercising the reference-graph
// construction: direct calls, method calls, closures, and method
// values.
package callgraph

import "time"

type ticker struct{ n int }

func (t *ticker) bump() { t.n++ }

// leaf reads the wall clock directly.
func leaf() int64 { return time.Now().UnixNano() }

// wrap is a one-hop wrapper around leaf.
func wrap() int64 { return leaf() }

// viaLit reaches leaf only through a function literal.
func viaLit() func() int64 {
	return func() int64 { return wrap() }
}

// viaValue takes a method value without calling it.
func viaValue(t *ticker) func() {
	return t.bump
}

// pure touches nothing.
func pure(a, b int) int { return a + b }
