package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package of this module.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` on the patterns in dir and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data files, as
// reported by `go list -export`. The gc importer caches internally, so
// one instance is shared across all packages of a load.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Load lists the given package patterns (e.g. "./...") relative to dir,
// parses and type-checks every non-dependency match, and returns them
// ready for analysis. Dependencies — including intra-module ones — are
// imported from compiler export data, so only the packages under
// analysis are parsed from source. Test files are not loaded: the
// invariants gate shipped simulator/runtime code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return out, nil
}

// LoadDir parses and type-checks the single package rooted at dir
// (every non-test .go file), resolving its imports through `go list
// -export` run from dir. importPath overrides the package's import
// path, letting fixture packages under testdata/ impersonate real
// module paths for allowlist-sensitive analyzers.
func LoadDir(dir, importPath string) (*Package, error) {
	pkgs, err := LoadDirs(DirSpec{Dir: dir, ImportPath: importPath})
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// DirSpec names one fixture directory and the import path it
// impersonates.
type DirSpec struct {
	Dir        string
	ImportPath string
}

// chainImporter resolves fixture packages loaded earlier in a LoadDirs
// sequence before falling back to compiler export data, so fixture
// packages can import one another under impersonated paths.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}

// LoadDirs loads several fixture packages in order, each visible to
// later ones under its impersonated import path. Multi-package fixtures
// exist to exercise interprocedural analyses: the call graph only has
// bodies for source-loaded packages, so cross-package reachability
// needs every involved fixture in the same load. Module and stdlib
// imports resolve through `go list -export` as in LoadDir.
func LoadDirs(specs ...DirSpec) ([]*Package, error) {
	fset := token.NewFileSet()
	local := make(map[string]*types.Package)
	exports := make(map[string]string)
	fallback := exportImporter(fset, exports)
	var out []*Package
	for _, spec := range specs {
		entries, err := os.ReadDir(spec.Dir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || filepath.Ext(name) != ".go" {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(spec.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("no Go files in %s", spec.Dir)
		}

		seen := make(map[string]bool)
		var imports []string
		for _, f := range files {
			for _, ispec := range f.Imports {
				path := ispec.Path.Value
				path = path[1 : len(path)-1] // unquote
				if path == "unsafe" || seen[path] {
					continue
				}
				if _, isLocal := local[path]; isLocal {
					continue
				}
				seen[path] = true
				imports = append(imports, path)
			}
		}
		sort.Strings(imports)

		if len(imports) > 0 {
			listed, err := goList(spec.Dir, imports)
			if err != nil {
				return nil, err
			}
			for _, p := range listed {
				if p.Export != "" {
					exports[p.ImportPath] = p.Export
				}
			}
		}

		info := newInfo()
		conf := types.Config{Importer: chainImporter{local: local, fallback: fallback}}
		tpkg, err := conf.Check(spec.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", spec.Dir, err)
		}
		local[spec.ImportPath] = tpkg
		out = append(out, &Package{
			ImportPath: spec.ImportPath,
			Dir:        spec.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return out, nil
}
