// Package seeded is a deliberately broken copy of uts.PresetNames with
// the sort dropped: the map walk's order now reaches the caller
// directly, which is exactly the defect class detorder exists to
// catch (the production function sorts, and carries the analyzer's one
// allowlist entry for it).
package seeded

var presets = map[string]int{"t1": 1, "t1l": 2, "t3": 3}

// PresetNames mirrors uts.PresetNames without sort.Strings.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets { // want `ranges over a map in a deterministic package`
		names = append(names, n)
	}
	return names
}
