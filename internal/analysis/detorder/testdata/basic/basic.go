// Package fixture exercises the detorder analyzer: randomized-order
// constructs in a deterministic package.
package fixture

func mapWalk(m map[int]string) int {
	total := 0
	for k := range m { // want `ranges over a map in a deterministic package`
		total += k
	}
	return total
}

// sliceWalk iterates a slice: order is positional, clean.
func sliceWalk(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

func spawn(fn func()) {
	go fn() // want `spawns a goroutine in a deterministic package`
}

func race(a, b chan int) int {
	select { // want `multi-case select in a deterministic package`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// poll uses a single case with a default: the choice is deterministic,
// clean.
func poll(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}
