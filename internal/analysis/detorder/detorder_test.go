package detorder_test

import (
	"testing"

	"distws/internal/analysis/analysistest"
	"distws/internal/analysis/detorder"
)

func TestDetorderFixture(t *testing.T) {
	analysistest.Run(t, detorder.New([]string{"fix/detorder"}, nil),
		"testdata/basic", "fix/detorder")
}

// TestDetorderSeededViolation proves the analyzer fires on a broken
// copy of uts.PresetNames with the sort removed.
func TestDetorderSeededViolation(t *testing.T) {
	analysistest.Run(t, detorder.New([]string{"fix/detorderseeded"}, nil),
		"testdata/seeded", "fix/detorderseeded")
}
