// Package detorder enforces the simulator's determinism contract at
// the ordering level: the golden-figure tests demand that two runs
// with the same seed produce byte-identical output, and the three Go
// constructs whose order the runtime deliberately randomizes — map
// iteration, goroutine scheduling, and multi-case select — silently
// break that promise the moment their order reaches any computation or
// output. Inside the deterministic packages all three are flagged
// unconditionally:
//
//   - ranging over a map: iteration order varies run to run by design;
//     a range whose results are sorted before use is legitimate and
//     carries an allowlist entry (uts.PresetNames is the one instance);
//   - the go statement: the simulator is single-threaded by contract —
//     concurrency lives in simulated time, not host threads. The one
//     sanctioned exception is the barrier-synchronized package list
//     (internal/sim/par): its workers only run between a window-start
//     receive and a window-done send, and every cross-shard message is
//     merged at the barrier under a total (deliver, sent, sender, seq)
//     key, so host scheduling order cannot reach any output — the
//     sharded golden and determinism-matrix tests gate exactly that.
//     Map ranges and multi-case selects stay flagged there;
//   - select over two or more communication cases: the runtime picks a
//     ready case pseudo-randomly. A single case (with or without
//     default) is deterministic and stays legal.
package detorder

import (
	"go/ast"
	"go/types"

	"distws/internal/analysis"
)

// New returns the analyzer. packages lists the deterministic packages
// the contract covers; barrierSync lists the subset whose goroutines
// are sanctioned by a barrier protocol that keeps host scheduling
// unobservable (go statements allowed, everything else still flagged).
func New(packages, barrierSync []string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "detorder",
		Doc:  "flags map ranges, go statements and multi-case selects in deterministic packages",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !analysis.PathMatches(pass.ImportPath, packages) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					if tv, ok := pass.Info.Types[n.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							pass.Reportf(n.Pos(),
								"ranges over a map in a deterministic package: iteration order varies run to run; iterate a sorted slice instead (or sort the results before any order-sensitive use)")
						}
					}
				case *ast.GoStmt:
					if !analysis.PathMatches(pass.ImportPath, barrierSync) {
						pass.Reportf(n.Pos(),
							"spawns a goroutine in a deterministic package: the simulator is single-threaded by contract, concurrency lives in simulated time")
					}
				case *ast.SelectStmt:
					cases := 0
					for _, cl := range n.Body.List {
						if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
							cases++
						}
					}
					if cases >= 2 {
						pass.Reportf(n.Pos(),
							"multi-case select in a deterministic package: the runtime picks a ready case pseudo-randomly; serialize the channels or poll in a fixed order")
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}
