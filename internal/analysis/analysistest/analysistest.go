// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against expectations written in the fixture
// source, in the style of golang.org/x/tools/go/analysis/analysistest:
//
//	rand.Seed(7) // want `math/rand`
//
// A `// want` comment holds one or more double-quoted or backquoted
// regular expressions; each must be matched, in order, by the messages
// of the diagnostics reported on that line. Lines without a want
// comment must produce no diagnostics, so every fixture is both a
// positive and a negative test.
package analysistest

import (
	"regexp"
	"strconv"
	"testing"

	"distws/internal/analysis"
)

var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is the set of message patterns wanted on one line.
type expectation struct {
	patterns []*regexp.Regexp
	matched  []bool
}

// Run loads the fixture package in dir under the given import path,
// applies the analyzer, and reports any mismatch between produced
// diagnostics and `// want` expectations as test failures.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	RunDirs(t, a, Dir{Path: dir, ImportPath: importPath})
}

// Dir pairs one fixture directory with the import path it impersonates.
type Dir struct {
	Path       string
	ImportPath string
}

// RunDirs loads several fixture packages into one analysis — the call
// graph only has bodies for source-loaded packages, so interprocedural
// fixtures need every involved package in the same load — applies the
// analyzer to all of them, and checks the produced diagnostics against
// the `// want` expectations of every fixture file.
func RunDirs(t *testing.T, a *analysis.Analyzer, dirs ...Dir) {
	t.Helper()
	specs := make([]analysis.DirSpec, len(dirs))
	for i, d := range dirs {
		specs[i] = analysis.DirSpec{Dir: d.Path, ImportPath: d.ImportPath}
	}
	pkgs, err := analysis.LoadDirs(specs...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", dirs, err)
	}

	wants := make(map[string]map[int]*expectation) // file -> line -> expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					i := indexWant(text)
					if i < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					exp := &expectation{}
					for _, m := range wantRe.FindAllString(text[i:], -1) {
						var pat string
						if m[0] == '`' {
							pat = m[1 : len(m)-1]
						} else {
							unq, err := strconv.Unquote(m)
							if err != nil {
								t.Fatalf("%s: bad want pattern %s: %v", pos, m, err)
							}
							pat = unq
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						exp.patterns = append(exp.patterns, re)
					}
					if len(exp.patterns) == 0 {
						t.Fatalf("%s: want comment with no patterns", pos)
					}
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = make(map[int]*expectation)
					}
					wants[pos.Filename][pos.Line] = exp
					exp.matched = make([]bool, len(exp.patterns))
				}
			}
		}
	}

	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %v: %v", a.Name, dirs, err)
	}

	for _, d := range diags {
		exp := wants[d.Pos.Filename][d.Pos.Line]
		if exp == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		ok := false
		for i, re := range exp.patterns {
			if !exp.matched[i] && re.MatchString(d.Message) {
				exp.matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("diagnostic does not match any remaining want pattern: %s", d)
		}
	}
	for file, lines := range wants {
		for line, exp := range lines {
			for i, m := range exp.matched {
				if !m {
					t.Errorf("%s:%d: no diagnostic matched want %q", file, line, exp.patterns[i])
				}
			}
		}
	}
}

// indexWant returns the offset of a "// want" marker in a comment, or
// -1. It accepts both standalone comments and trailing ones.
func indexWant(text string) int {
	const marker = "// want "
	for i := 0; i+len(marker) <= len(text); i++ {
		if text[i:i+len(marker)] == marker {
			return i + len(marker)
		}
	}
	return -1
}
