// Package lockcheck guards the two mutex disciplines the shared-memory
// runtime depends on (internal/rt's per-worker stacks, and any future
// locking in internal/comm): a critical section must release its lock
// on every path out of the function, and must not perform a channel
// send while the lock is held (a blocked receiver would then deadlock
// every thief queued on the mutex — exactly the steal-contention
// collapse the paper measures, reproduced as a bug).
//
// The analyzer is lexical, not path-sensitive: for each Lock/RLock call
// it scans forward to the first matching Unlock/RUnlock on the same
// receiver expression within the same function literal, and reports
//
//   - a return statement between the two ("skipped unlock"),
//   - a channel send between the two,
//   - a barrier primitive between the two — a channel receive or a
//     sync.WaitGroup.Wait — which blocks until *another* goroutine
//     acts; if that goroutine needs the held lock (the sharded
//     kernel's window barrier is the motivating shape: workers
//     rendezvous with a coordinator every window), the barrier never
//     opens. sync.Cond.Wait is exempt: it is specified to be called
//     with its lock held and releases it while waiting,
//   - a Lock with no matching unlock and no deferred unlock at all.
//
// A deferred unlock (including one inside a deferred closure) guards
// all return paths, but sends after the Lock are still reported — the
// lock is held until function exit. Function literals are independent
// scopes: a return inside a callback does not leave the enclosing
// critical section.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"distws/internal/analysis"
)

// New returns the analyzer. It has no configuration: the invariant is
// repo-wide.
func New() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "lockcheck",
		Doc:  "flags critical sections that can skip Unlock or send on a channel while locked",
	}
	a.Run = func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
					checkScope(pass, fn.Body)
				}
			}
		}
		return nil
	}
	return a
}

type eventKind int

const (
	lockEvent eventKind = iota
	unlockEvent
	returnEvent
	sendEvent
	recvEvent
	waitEvent
)

type event struct {
	pos      token.Pos
	kind     eventKind
	method   string // Lock, RLock, Unlock, RUnlock
	key      string // receiver expression, e.g. "w.mu"
	deferred bool
}

// checkScope analyzes one function body. Nested function literals are
// independent scopes: they are collected and analyzed separately, and
// only the unlocks of a *deferred* closure contribute (as deferred
// unlock events) to the enclosing scope.
func checkScope(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []event
	var nested []*ast.FuncLit
	deferredCalls := make(map[*ast.CallExpr]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			nested = append(nested, n)
			return false
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				// defer func() { ...; mu.Unlock() }() guards this
				// scope's mu just like defer mu.Unlock().
				for _, e := range unlocksIn(pass, lit.Body) {
					e.deferred = true
					events = append(events, e)
				}
			}
		case *ast.ReturnStmt:
			events = append(events, event{pos: n.Pos(), kind: returnEvent})
		case *ast.SendStmt:
			events = append(events, event{pos: n.Arrow, kind: sendEvent})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, event{pos: n.OpPos, kind: recvEvent})
			}
		case *ast.CallExpr:
			if isWaitGroupWait(pass, n) {
				events = append(events, event{pos: n.Pos(), kind: waitEvent})
			}
			if method, key, ok := syncLockCall(pass, n); ok {
				kind := lockEvent
				if method == "Unlock" || method == "RUnlock" {
					kind = unlockEvent
				}
				events = append(events, event{
					pos:      n.Pos(),
					kind:     kind,
					method:   method,
					key:      key,
					deferred: deferredCalls[n],
				})
			}
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	reportScope(pass, events)

	for _, lit := range nested {
		checkScope(pass, lit.Body)
	}
}

// unlocksIn collects the Unlock/RUnlock events of one closure body,
// not descending into further nested literals.
func unlocksIn(pass *analysis.Pass, body *ast.BlockStmt) []event {
	var out []event
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if c, isCall := n.(*ast.CallExpr); isCall {
			if method, key, ok := syncLockCall(pass, c); ok &&
				(method == "Unlock" || method == "RUnlock") {
				out = append(out, event{pos: c.Pos(), kind: unlockEvent, method: method, key: key})
			}
		}
		return true
	})
	return out
}

// reportScope applies the critical-section rules to one scope's
// position-sorted events.
func reportScope(pass *analysis.Pass, events []event) {
	for _, l := range events {
		if l.kind != lockEvent || l.deferred {
			continue
		}
		unlockName := "Unlock"
		if l.method == "RLock" {
			unlockName = "RUnlock"
		}

		guarded := false
		for _, e := range events {
			if e.kind == unlockEvent && e.deferred && e.key == l.key && e.method == unlockName {
				guarded = true
				break
			}
		}

		end := token.Pos(-1) // exclusive end of the critical section
		if !guarded {
			for _, e := range events {
				if e.kind == unlockEvent && !e.deferred && e.key == l.key &&
					e.method == unlockName && e.pos > l.pos {
					end = e.pos
					break
				}
			}
			if end < 0 {
				pass.Reportf(l.pos,
					"%s.%s() has no matching %s in this function: the lock can never be released",
					l.key, l.method, unlockName)
				continue
			}
		}

		lockLine := pass.Fset.Position(l.pos).Line
		for _, e := range events {
			if e.pos <= l.pos || (!guarded && e.pos >= end) {
				continue
			}
			switch e.kind {
			case returnEvent:
				if !guarded {
					pass.Reportf(e.pos,
						"return while %s is locked (%s at line %d): this path skips %s",
						l.key, l.method, lockLine, unlockName)
				}
			case sendEvent:
				pass.Reportf(e.pos,
					"channel send while holding %s (%s at line %d): a blocked receiver stalls every goroutine queued on the lock",
					l.key, l.method, lockLine)
			case recvEvent:
				pass.Reportf(e.pos,
					"channel receive while holding %s (%s at line %d): the barrier cannot open if the sender needs the lock",
					l.key, l.method, lockLine)
			case waitEvent:
				pass.Reportf(e.pos,
					"WaitGroup.Wait while holding %s (%s at line %d): a worker that needs the lock can never call Done",
					l.key, l.method, lockLine)
			}
		}
	}
}

// isWaitGroupWait reports whether call is wg.Wait() on a
// sync.WaitGroup receiver. sync.Cond.Wait deliberately does not match:
// it must be called with the lock held.
func isWaitGroupWait(pass *analysis.Pass, call *ast.CallExpr) bool {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	sel := pass.Info.Selections[se]
	if sel == nil || sel.Kind() != types.MethodVal {
		return false
	}
	fn, ok := sel.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Wait" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	ptr, ok := recv.Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// syncLockCall reports whether call is mu.Lock / RLock / Unlock /
// RUnlock on a sync.Mutex, sync.RWMutex or sync.Locker receiver, and
// returns the method name and the receiver expression rendered as a
// stable key.
func syncLockCall(pass *analysis.Pass, call *ast.CallExpr) (method, key string, ok bool) {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	sel := pass.Info.Selections[se]
	if sel == nil || sel.Kind() != types.MethodVal {
		return "", "", false
	}
	fn, ok := sel.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return fn.Name(), types.ExprString(se.X), true
	}
	return "", "", false
}
