package lockcheck_test

import (
	"testing"

	"distws/internal/analysis/analysistest"
	"distws/internal/analysis/lockcheck"
)

func TestCriticalSectionDiscipline(t *testing.T) {
	analysistest.Run(t, lockcheck.New(), "testdata/locks", "distws/internal/workstack")
}
