// Package fixture exercises the lockcheck analyzer: leaked critical
// sections and sends-under-lock must be reported; the disciplined
// variants below them must not.
package fixture

import "sync"

type store struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items []int
}

func skipUnlockOnReturn(s *store, stop bool) {
	s.mu.Lock()
	if stop {
		return // want `return while s\.mu is locked`
	}
	s.items = append(s.items, 1)
	s.mu.Unlock()
}

func neverUnlocked(s *store) { // hold the lock forever
	s.mu.Lock() // want `no matching Unlock`
	s.items = nil
}

func sendWhileLocked(s *store, ch chan int) {
	s.mu.Lock()
	ch <- len(s.items) // want `channel send while holding s\.mu`
	s.mu.Unlock()
}

func sendUnderDeferredLock(s *store, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- len(s.items) // want `channel send while holding s\.mu`
}

func readLockLeak(s *store, empty bool) int {
	s.rw.RLock()
	if empty {
		return 0 // want `return while s\.rw is locked`
	}
	n := len(s.items)
	s.rw.RUnlock()
	return n
}

func deferGuarded(s *store, stop bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if stop {
		return 0
	}
	return len(s.items)
}

func deferredClosureGuards(s *store, stop bool) int {
	s.mu.Lock()
	defer func() {
		s.items = s.items[:0]
		s.mu.Unlock()
	}()
	if stop {
		return 0
	}
	return len(s.items)
}

func straightLine(s *store) {
	s.mu.Lock()
	s.items = append(s.items, 2)
	s.mu.Unlock()
}

func returnAfterUnlock(s *store) int {
	s.mu.Lock()
	n := len(s.items)
	s.mu.Unlock()
	if n == 0 {
		return -1
	}
	return n
}

func closureIsItsOwnScope(s *store) func() bool {
	s.mu.Lock()
	probe := func() bool {
		return len(s.items) > 0 // a return inside a callback does not leak the outer lock
	}
	s.mu.Unlock()
	return probe
}

func sendOutsideCriticalSection(s *store, ch chan int) {
	s.mu.Lock()
	n := len(s.items)
	s.mu.Unlock()
	ch <- n
}

func independentLocks(s *store, other *store) {
	s.mu.Lock()
	other.mu.Lock()
	other.mu.Unlock()
	s.mu.Unlock()
}

func recvWhileLocked(s *store, ch chan int) {
	s.mu.Lock()
	s.items = append(s.items, <-ch) // want `channel receive while holding s\.mu`
	s.mu.Unlock()
}

func recvUnderDeferredLock(s *store, ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-ch // want `channel receive while holding s\.mu`
}

func waitWhileLocked(s *store, wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want `WaitGroup\.Wait while holding s\.mu`
	s.mu.Unlock()
}

func barrierOutsideCriticalSection(s *store, ch chan int, wg *sync.WaitGroup) {
	s.mu.Lock()
	n := len(s.items)
	s.mu.Unlock()
	wg.Wait()
	n += <-ch
	s.mu.Lock()
	s.items = append(s.items, n)
	s.mu.Unlock()
}

func condWaitIsLegal(s *store, c *sync.Cond) {
	c.L.Lock()
	for len(s.items) == 0 {
		c.Wait() // Cond.Wait releases its lock while parked: not a barrier hazard
	}
	c.L.Unlock()
}
