// Package walltime enforces the virtual-time invariant: the
// discrete-event simulator and everything built on it advance time only
// through the event kernel (sim.Kernel's clock), never by consulting
// the machine's clock. A wall-clock read on a simulated path couples
// results to host speed and scheduling, which breaks both
// reproducibility and the paper's virtual-time metrics (speedup and
// occupancy are ratios of simulated time).
//
// The analyzer reports any reference to a wall-clock or timer function
// of package time (Now, Since, Until, Sleep, After, AfterFunc, Tick,
// NewTicker, NewTimer) inside a configured virtual-time package.
// Pure-value identifiers — time.Duration, time.Millisecond and friends
// — are always allowed. The real shared-memory runtime (internal/rt)
// and the command-line tools measure genuine elapsed time and are
// allowlisted by the driver.
//
// Laundering through a helper is caught interprocedurally: a call from
// a virtual-time package to any function that transitively reaches a
// banned time function through the module call graph is flagged at the
// call site — unless the callee is itself a checked virtual-time
// function, whose own direct reference already carries the diagnostic.
package walltime

import (
	"go/ast"
	"go/types"

	"distws/internal/analysis"
)

// banned is the set of package time functions that read or wait on the
// host clock.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// New returns the analyzer. Packages matching a virtual prefix are
// checked unless they also match an allow prefix; every other package
// is ignored.
func New(virtual, allow []string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "walltime",
		Doc:  "flags wall-clock reads (time.Now etc.) in virtual-time packages",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !analysis.PathMatches(pass.ImportPath, virtual) ||
			analysis.PathMatches(pass.ImportPath, allow) {
			return nil
		}
		for id, obj := range pass.Info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				continue
			}
			if banned[fn.Name()] {
				pass.Reportf(id.Pos(),
					"wall-clock time.%s in virtual-time package %s: simulated time must come from the event kernel",
					fn.Name(), pass.ImportPath)
			}
		}
		// Interprocedural: calls that launder a wall-clock read through
		// a helper outside the checked set.
		reachers := pass.Graph.Reachers(func(fn *types.Func) bool {
			return fn.Pkg() != nil && fn.Pkg().Path() == "time" && banned[fn.Name()]
		})
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || !reachers[fn] {
					return true
				}
				if p := fn.Pkg(); p != nil &&
					analysis.PathMatches(p.Path(), virtual) && !analysis.PathMatches(p.Path(), allow) {
					// The callee is itself checked: its own direct
					// reference carries the diagnostic.
					return true
				}
				pass.Reportf(call.Pos(),
					"call to %s transitively reads the wall clock (time.Now and friends) in virtual-time package %s: simulated time must come from the event kernel",
					fn.Name(), pass.ImportPath)
				return true
			})
		}
		return nil
	}
	return a
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
