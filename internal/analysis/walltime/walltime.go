// Package walltime enforces the virtual-time invariant: the
// discrete-event simulator and everything built on it advance time only
// through the event kernel (sim.Kernel's clock), never by consulting
// the machine's clock. A wall-clock read on a simulated path couples
// results to host speed and scheduling, which breaks both
// reproducibility and the paper's virtual-time metrics (speedup and
// occupancy are ratios of simulated time).
//
// The analyzer reports any reference to a wall-clock or timer function
// of package time (Now, Since, Until, Sleep, After, AfterFunc, Tick,
// NewTicker, NewTimer) inside a configured virtual-time package.
// Pure-value identifiers — time.Duration, time.Millisecond and friends
// — are always allowed. The real shared-memory runtime (internal/rt)
// and the command-line tools measure genuine elapsed time and are
// allowlisted by the driver.
package walltime

import (
	"go/types"

	"distws/internal/analysis"
)

// banned is the set of package time functions that read or wait on the
// host clock.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// New returns the analyzer. Packages matching a virtual prefix are
// checked unless they also match an allow prefix; every other package
// is ignored.
func New(virtual, allow []string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "walltime",
		Doc:  "flags wall-clock reads (time.Now etc.) in virtual-time packages",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !analysis.PathMatches(pass.ImportPath, virtual) ||
			analysis.PathMatches(pass.ImportPath, allow) {
			return nil
		}
		for id, obj := range pass.Info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				continue
			}
			if banned[fn.Name()] {
				pass.Reportf(id.Pos(),
					"wall-clock time.%s in virtual-time package %s: simulated time must come from the event kernel",
					fn.Name(), pass.ImportPath)
			}
		}
		return nil
	}
	return a
}
