package walltime_test

import (
	"testing"

	"distws/internal/analysis/analysistest"
	"distws/internal/analysis/walltime"
)

func TestFlagsWallClockInVirtualPackage(t *testing.T) {
	a := walltime.New([]string{"distws/internal"}, []string{"distws/internal/rt"})
	analysistest.Run(t, a, "testdata/virtual", "distws/internal/sim")
}

func TestAllowlistedRuntimeIsIgnored(t *testing.T) {
	a := walltime.New([]string{"distws/internal"}, []string{"distws/internal/rt"})
	analysistest.Run(t, a, "testdata/real", "distws/internal/rt")
}

func TestUnlistedPackageIsIgnored(t *testing.T) {
	a := walltime.New([]string{"distws/internal"}, []string{"distws/internal/rt"})
	analysistest.Run(t, a, "testdata/real", "distws/cmd/experiments")
}
