package walltime_test

import (
	"testing"

	"distws/internal/analysis/analysistest"
	"distws/internal/analysis/walltime"
)

func TestFlagsWallClockInVirtualPackage(t *testing.T) {
	a := walltime.New([]string{"distws/internal"}, []string{"distws/internal/rt"})
	analysistest.Run(t, a, "testdata/virtual", "distws/internal/sim")
}

func TestAllowlistedRuntimeIsIgnored(t *testing.T) {
	a := walltime.New([]string{"distws/internal"}, []string{"distws/internal/rt"})
	analysistest.Run(t, a, "testdata/real", "distws/internal/rt")
}

func TestUnlistedPackageIsIgnored(t *testing.T) {
	a := walltime.New([]string{"distws/internal"}, []string{"distws/internal/rt"})
	analysistest.Run(t, a, "testdata/real", "distws/cmd/experiments")
}

// TestInterproceduralLaundering proves a wall-clock read hidden behind
// a helper in a non-virtual package is flagged at the virtual-time call
// site through the call graph.
func TestInterproceduralLaundering(t *testing.T) {
	a := walltime.New([]string{"fix/virt"}, nil)
	analysistest.RunDirs(t, a,
		analysistest.Dir{Path: "testdata/cross/rt", ImportPath: "fix/rt"},
		analysistest.Dir{Path: "testdata/cross/virt", ImportPath: "fix/virt"},
	)
}
