// Package fixture impersonates a virtual-time package
// (distws/internal/sim): wall-clock reads and waits must be reported;
// time's pure value types and constants must not.
package fixture

import "time"

type event struct {
	at time.Duration
}

func wallClockReads() time.Duration {
	start := time.Now()      // want `wall-clock time\.Now`
	time.Sleep(time.Second)  // want `wall-clock time\.Sleep`
	return time.Since(start) // want `wall-clock time\.Since`
}

func timers() {
	<-time.After(time.Millisecond)  // want `wall-clock time\.After`
	t := time.NewTimer(time.Second) // want `wall-clock time\.NewTimer`
	t.Stop()
}

func valuesAreFine(e event) time.Duration {
	d := 3 * time.Millisecond
	return e.at + d.Round(time.Microsecond)
}
