// Package fixture impersonates the allowlisted real runtime
// (distws/internal/rt): measuring genuine elapsed time there is the
// point, so nothing may be reported.
package fixture

import "time"

func measure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
