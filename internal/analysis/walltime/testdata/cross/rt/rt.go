// Package rt impersonates the real shared-memory runtime: it sits
// outside the virtual-time set, so its own wall-clock reads are
// legitimate — but virtual-time callers must not launder reads through
// it.
package rt

import "time"

// Elapsed reads the host clock: fine here, poison for virtual callers.
func Elapsed(start time.Time) time.Duration { return time.Since(start) }

// Budget is clock-free: virtual callers may use it.
func Budget(d time.Duration) time.Duration { return 2 * d }
