// Package virt is a virtual-time package that tries to launder a
// wall-clock read through the runtime helper package: no time.Now
// appears lexically here, so only the interprocedural check can see
// the defect.
package virt

import (
	"time"

	"fix/rt"
)

func elapsed(start time.Time) time.Duration {
	return rt.Elapsed(start) // want `call to Elapsed transitively reads the wall clock`
}

// budget calls a clock-free helper of the same package: clean.
func budget() time.Duration {
	return rt.Budget(3 * time.Millisecond)
}
