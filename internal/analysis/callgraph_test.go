package analysis

import (
	"go/types"
	"testing"
)

func loadCallgraphFixture(t *testing.T) (*Package, *CallGraph) {
	t.Helper()
	pkg, err := LoadDir("testdata/callgraph", "fix/callgraph")
	if err != nil {
		t.Fatal(err)
	}
	return pkg, BuildCallGraph([]*Package{pkg})
}

func TestCallGraphEdges(t *testing.T) {
	_, g := loadCallgraphFixture(t)

	wrap := g.Lookup("fix/callgraph.wrap")
	leaf := g.Lookup("fix/callgraph.leaf")
	if wrap == nil || leaf == nil {
		t.Fatal("fixture functions not found by FullName")
	}
	found := false
	for _, e := range g.Edges(wrap) {
		if e.Callee == leaf {
			found = true
			if e.InLit {
				t.Error("wrap→leaf edge wrongly marked InLit")
			}
		}
	}
	if !found {
		t.Error("missing direct edge wrap→leaf")
	}

	// Calls inside a function literal are attributed to the enclosing
	// declaration with the InLit mark.
	viaLit := g.Lookup("fix/callgraph.viaLit")
	foundLit := false
	for _, e := range g.Edges(viaLit) {
		if e.Callee == wrap {
			foundLit = true
			if !e.InLit {
				t.Error("viaLit→wrap edge should be marked InLit")
			}
		}
	}
	if !foundLit {
		t.Error("missing closure edge viaLit→wrap")
	}

	// A method value taken without a call is still an edge.
	viaValue := g.Lookup("fix/callgraph.viaValue")
	bump := g.Lookup("(*fix/callgraph.ticker).bump")
	if bump == nil {
		t.Fatal("method bump not found by FullName")
	}
	foundVal := false
	for _, e := range g.Edges(viaValue) {
		if e.Callee == bump {
			foundVal = true
		}
	}
	if !foundVal {
		t.Error("missing method-value edge viaValue→bump")
	}
}

func TestCallGraphReachers(t *testing.T) {
	_, g := loadCallgraphFixture(t)

	isTimeNow := func(fn *types.Func) bool {
		return fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now"
	}
	reach := g.Reachers(isTimeNow)

	for _, name := range []string{
		"fix/callgraph.leaf",   // direct caller
		"fix/callgraph.wrap",   // one-hop wrapper
		"fix/callgraph.viaLit", // through a closure
	} {
		if !reach[g.Lookup(name)] {
			t.Errorf("%s should reach time.Now", name)
		}
	}
	for _, name := range []string{"fix/callgraph.pure", "fix/callgraph.viaValue"} {
		if reach[g.Lookup(name)] {
			t.Errorf("%s should not reach time.Now", name)
		}
	}
}

func TestCallGraphReachableFrom(t *testing.T) {
	_, g := loadCallgraphFixture(t)

	viaLit := g.Lookup("fix/callgraph.viaLit")
	reach := g.ReachableFrom(viaLit)
	if !reach[g.Lookup("fix/callgraph.wrap")] || !reach[g.Lookup("fix/callgraph.leaf")] {
		t.Error("forward closure from viaLit should include wrap and leaf")
	}
	if reach[g.Lookup("fix/callgraph.pure")] {
		t.Error("forward closure from viaLit must not include pure")
	}
}
