package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallGraph is a static reference graph over every function declared in
// the loaded packages. An edge caller→callee exists for every identifier
// in caller's body that resolves to a *types.Func: direct calls, method
// calls, and function values taken for later invocation (method values,
// callback registration). That conservative edge set is exactly what the
// interprocedural analyzers need — "can this function transitively reach
// time.Now" must treat a stored method value as reachable.
//
// Calls made inside a function literal are attributed to the enclosing
// named function (marked InLit), so reachability flows through closures:
// a callback built in New that calls Kernel.Now gives New an InLit edge
// to Now. Dynamic dispatch through interface values resolves to the
// interface's abstract method object, where traversal stops; analyzers
// that care about interface implementations name them explicitly (see
// hotalloc's root configuration).
type CallGraph struct {
	edges  map[*types.Func][]CallEdge
	rev    map[*types.Func][]*types.Func
	decls  map[*types.Func]*FuncDecl
	byName map[string]*types.Func
}

// CallEdge is one reference from a declared function to another function.
type CallEdge struct {
	Callee *types.Func
	// Pos is the referencing identifier's position in the caller.
	Pos token.Pos
	// InLit marks references made inside a function literal of the
	// caller rather than its body proper.
	InLit bool
}

// FuncDecl pairs a declared function's syntax with the package that
// holds it, so analyzers can inspect bodies of functions found through
// the graph.
type FuncDecl struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// BuildCallGraph constructs the reference graph over the given packages.
// Functions of packages imported only from export data have no body and
// therefore no outgoing edges; they appear as callees only.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		edges:  make(map[*types.Func][]CallEdge),
		rev:    make(map[*types.Func][]*types.Func),
		decls:  make(map[*types.Func]*FuncDecl),
		byName: make(map[string]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.decls[fn] = &FuncDecl{Decl: fd, Pkg: pkg}
				g.byName[fn.FullName()] = fn
				g.collect(pkg, fn, fd.Body, false)
			}
		}
	}
	seen := make(map[[2]*types.Func]bool)
	for caller, edges := range g.edges {
		for _, e := range edges {
			key := [2]*types.Func{e.Callee, caller}
			if !seen[key] {
				seen[key] = true
				g.rev[e.Callee] = append(g.rev[e.Callee], caller)
			}
		}
	}
	return g
}

// collect records an edge for every identifier under n that resolves to
// a function, descending into literals with the InLit mark set.
func (g *CallGraph) collect(pkg *Package, caller *types.Func, n ast.Node, inLit bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			g.collect(pkg, caller, x.Body, true)
			return false
		case *ast.Ident:
			if callee, ok := pkg.Info.Uses[x].(*types.Func); ok {
				g.edges[caller] = append(g.edges[caller], CallEdge{
					Callee: callee, Pos: x.Pos(), InLit: inLit,
				})
			}
		}
		return true
	})
}

// Lookup resolves a function by its types.Func.FullName — e.g.
// "distws/internal/comm.New" or "(*distws/internal/sim.Kernel).Cancel"
// — among the functions declared in the loaded packages.
func (g *CallGraph) Lookup(fullName string) *types.Func {
	return g.byName[fullName]
}

// Decl returns the declaration of a function declared in the loaded
// packages, or nil for imported/abstract functions.
func (g *CallGraph) Decl(fn *types.Func) *FuncDecl {
	return g.decls[fn]
}

// EachDecl calls f for every function declared in the loaded packages,
// in deterministic FullName order.
func (g *CallGraph) EachDecl(f func(*types.Func, *FuncDecl)) {
	names := make([]string, 0, len(g.byName))
	for name := range g.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fn := g.byName[name]
		f(fn, g.decls[fn])
	}
}

// Edges returns fn's outgoing references.
func (g *CallGraph) Edges(fn *types.Func) []CallEdge {
	return g.edges[fn]
}

// ReachableFrom returns the set of functions transitively referenced
// from the roots, roots included.
func (g *CallGraph) ReachableFrom(roots ...*types.Func) map[*types.Func]bool {
	reach := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, r := range roots {
		if r != nil && !reach[r] {
			reach[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range g.edges[fn] {
			if !reach[e.Callee] {
				reach[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return reach
}

// Reachers returns every declared function from which some function
// satisfying pred is transitively reachable. Functions satisfying pred
// are not themselves included unless they also reach another such
// function — callers ask "does calling this wrapper touch the thing",
// not "is this the thing".
func (g *CallGraph) Reachers(pred func(*types.Func) bool) map[*types.Func]bool {
	marked := make(map[*types.Func]bool)
	var queue []*types.Func
	mark := func(fn *types.Func) {
		if !marked[fn] {
			marked[fn] = true
			queue = append(queue, fn)
		}
	}
	for callee, callers := range g.rev {
		if pred(callee) {
			for _, c := range callers {
				mark(c)
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, c := range g.rev[fn] {
			mark(c)
		}
	}
	return marked
}
