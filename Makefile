# Build/verify entry points. `make check` is the full CI gate: a tree
# that passes it compiles, is gofmt-clean, passes go vet and the
# repo-specific distwsvet analyzers (see cmd/distwsvet), and survives
# the race-detector stress tests on the concurrent packages.

GO ?= go
ARTIFACTS ?= artifacts

.PHONY: build test vet distwsvet race lint obs-smoke causal-smoke chaos-smoke bench-json bench-smoke check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# distwsvet enforces the determinism, ownership and allocation
# invariants: detrand, walltime, lockcheck, atomicmix, handlesafe,
# poolcheck, hotalloc, detorder. See README "Enforced invariants".
# The run is budgeted so an analyzer pathology fails CI instead of
# stalling it, and the JSON report (findings, suppressions with their
# reasons, stale allowlist entries) lands in $(ARTIFACTS) for upload.
DISTWSVET_BUDGET ?= 2m
distwsvet:
	@mkdir -p $(ARTIFACTS)
	$(GO) run ./cmd/distwsvet -budget $(DISTWSVET_BUDGET) -format json ./... > $(ARTIFACTS)/distwsvet.json || { cat $(ARTIFACTS)/distwsvet.json; exit 1; }
	@echo "distwsvet: clean; report in $(ARTIFACTS)/distwsvet.json"

# The concurrent packages get a dedicated race-detector pass; -short
# keeps the stress budgets CI-sized.
race:
	$(GO) test -race -short ./internal/deque ./internal/rt

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# obs-smoke exercises the observability pipeline end to end: a small
# traced simulation, the tracetool text and JSON analyses, a Chrome
# trace conversion, and obscheck validation of every artifact. CI
# uploads $(ARTIFACTS)/ so the Perfetto trace of each run is a click
# away (load smoke.chrome.json at ui.perfetto.dev).
obs-smoke:
	@mkdir -p $(ARTIFACTS)
	$(GO) run ./cmd/uts -tree H-TINY -ranks 32 -seed 3 \
		-trace $(ARTIFACTS)/smoke.jsonl -chrome $(ARTIFACTS)/smoke.chrome.json
	$(GO) run ./cmd/tracetool -in $(ARTIFACTS)/smoke.jsonl
	$(GO) run ./cmd/tracetool -in $(ARTIFACTS)/smoke.jsonl -format json > $(ARTIFACTS)/smoke.report.json
	$(GO) run ./cmd/obscheck $(ARTIFACTS)/smoke.jsonl $(ARTIFACTS)/smoke.chrome.json $(ARTIFACTS)/smoke.report.json

# causal-smoke runs the causal analyses (idle-time blame, critical
# path, work lineage) over the obs-smoke trace and archives the blame
# report next to the Perfetto trace. The non-empty check catches a
# silently broken pipeline.
causal-smoke: obs-smoke
	$(GO) run ./cmd/tracetool -in $(ARTIFACTS)/smoke.jsonl \
		-blame -critical -lineage > $(ARTIFACTS)/smoke.blame.txt
	@grep -q "idle-time blame" $(ARTIFACTS)/smoke.blame.txt || \
		{ echo "causal-smoke: blame report missing from smoke.blame.txt"; exit 1; }
	@grep -q "critical path" $(ARTIFACTS)/smoke.blame.txt || \
		{ echo "causal-smoke: critical path missing from smoke.blame.txt"; exit 1; }
	@echo "causal-smoke: wrote $(ARTIFACTS)/smoke.blame.txt"

# chaos-smoke drives the fault-injection subsystem end to end: a tiny
# crash+straggler run through cmd/uts must terminate completely,
# report nonzero recovery activity, and replay byte-identically (the
# fault schedule is part of the seeded state). The chaos degradation
# table (harness experiment "chaos") lands in $(ARTIFACTS)/ alongside
# the observability artifacts; its shape checks gate the exit status.
CHAOS_RUN = $(GO) run ./cmd/uts -tree T3 -ranks 16 -seed 7 \
	-crash 3@40us,11@90us -straggler 5@3x2

chaos-smoke:
	@mkdir -p $(ARTIFACTS)
	$(CHAOS_RUN) > $(ARTIFACTS)/chaos.txt
	@$(CHAOS_RUN) | cmp -s - $(ARTIFACTS)/chaos.txt || \
		{ echo "chaos-smoke: faulted run is not replay-identical"; exit 1; }
	@grep -q "crashed ranks:   2" $(ARTIFACTS)/chaos.txt || \
		{ echo "chaos-smoke: expected 2 crashed ranks"; cat $(ARTIFACTS)/chaos.txt; exit 1; }
	@grep -q "recoveries:" $(ARTIFACTS)/chaos.txt || \
		{ echo "chaos-smoke: no recovery episodes recorded"; cat $(ARTIFACTS)/chaos.txt; exit 1; }
	@if grep -q "WARNING: premature" $(ARTIFACTS)/chaos.txt; then \
		echo "chaos-smoke: premature termination under faults"; exit 1; fi
	$(GO) run ./cmd/experiments -run chaos -scale quick -o $(ARTIFACTS)/chaos.table.txt
	@echo "chaos-smoke: wrote $(ARTIFACTS)/chaos.txt and chaos.table.txt"

# Hot-path benchmarks of the simulation substrate (event kernel,
# messaging, latency lookup, UTS hashing), exported as a JSON artifact
# for archiving and cross-commit comparison. BENCHTIME=1x gives the
# CI smoke variant below; default is a real measurement.
BENCHTIME ?= 1s
BENCH_PKGS = ./internal/sim ./internal/comm ./internal/topology ./internal/uts ./internal/fault .
BENCH_NAMES = BenchmarkKernelHotPath|BenchmarkCommSend|BenchmarkLatencyLookup|BenchmarkUTSChildGen|BenchmarkFaultInjection

bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_NAMES)' -benchmem \
		-benchtime $(BENCHTIME) $(BENCH_PKGS) | \
		$(GO) run ./cmd/benchjson \
		-require KernelHotPath,CommSend,LatencyLookup,UTSChildGen,FaultInjection/nil-plan,FaultInjection/crashes,FaultInjection/lossy \
		-out BENCH_sim.json
	@echo "bench-json: wrote BENCH_sim.json"

# bench-smoke is the CI gate: one iteration of every hot-path benchmark
# (so the loop bodies stay compilable and runnable) plus the alloc-gate
# tests, which fail on any allocation regression in the kernel or the
# messaging hot path.
bench-smoke:
	$(GO) test -run 'AllocFree' -count=1 $(BENCH_PKGS)
	$(MAKE) bench-json BENCHTIME=1x

check: build lint vet distwsvet test race causal-smoke chaos-smoke
	@echo "check: all gates passed"

clean:
	$(GO) clean ./...
