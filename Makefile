# Build/verify entry points. `make check` is the full CI gate: a tree
# that passes it compiles, is gofmt-clean, passes go vet and the
# repo-specific distwsvet analyzers (see cmd/distwsvet), and survives
# the race-detector stress tests on the concurrent packages.

GO ?= go

.PHONY: build test vet distwsvet race lint check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# distwsvet enforces the determinism and concurrency invariants:
# detrand, walltime, lockcheck, atomicmix. See README "Enforced
# invariants".
distwsvet:
	$(GO) run ./cmd/distwsvet ./...

# The concurrent packages get a dedicated race-detector pass; -short
# keeps the stress budgets CI-sized.
race:
	$(GO) test -race -short ./internal/deque ./internal/rt

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build lint vet distwsvet test race
	@echo "check: all gates passed"

clean:
	$(GO) clean ./...
