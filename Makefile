# Build/verify entry points. `make check` is the full CI gate: a tree
# that passes it compiles, is gofmt-clean, passes go vet and the
# repo-specific distwsvet analyzers (see cmd/distwsvet), and survives
# the race-detector stress tests on the concurrent packages.

GO ?= go
ARTIFACTS ?= artifacts
# Smoke-run output lands in its own subdirectory; the top level of
# $(ARTIFACTS) holds only directories (smoke/, runs/, bench/) plus the
# distwsvet report. artifacts/runs/baseline/ is the one committed
# corner: the golden ledger the matrix gate compares against.
SMOKE = $(ARTIFACTS)/smoke

.PHONY: build test vet distwsvet race lint obs-smoke causal-smoke chaos-smoke serve-smoke par-smoke parprof-smoke bench-json bench-smoke matrix-smoke matrix-baseline check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# distwsvet enforces the determinism, ownership and allocation
# invariants: detrand, walltime, lockcheck, atomicmix, handlesafe,
# poolcheck, hotalloc, detorder. See README "Enforced invariants".
# The run is budgeted so an analyzer pathology fails CI instead of
# stalling it, and the JSON report (findings, suppressions with their
# reasons, stale allowlist entries) lands in $(ARTIFACTS) for upload.
DISTWSVET_BUDGET ?= 2m
distwsvet:
	@mkdir -p $(ARTIFACTS)
	$(GO) run ./cmd/distwsvet -budget $(DISTWSVET_BUDGET) -format json ./... > $(ARTIFACTS)/distwsvet.json || { cat $(ARTIFACTS)/distwsvet.json; exit 1; }
	@echo "distwsvet: clean; report in $(ARTIFACTS)/distwsvet.json"

# The concurrent packages get a dedicated race-detector pass; -short
# keeps the stress budgets CI-sized. The sharded kernel and the sharded
# engine tests (window barrier, staging queues, crash-during-window)
# run under the detector in full: the parallel windows are the one
# place simulated concurrency meets host concurrency.
race:
	$(GO) test -race -short ./internal/deque ./internal/rt ./internal/sim/par
	$(GO) test -race -run 'Sharded' -count=1 ./internal/core

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# obs-smoke exercises the observability pipeline end to end: a small
# traced simulation, the tracetool text and JSON analyses, a Chrome
# trace conversion, and obscheck validation of every artifact. CI
# uploads $(ARTIFACTS)/ so the Perfetto trace of each run is a click
# away (load smoke.chrome.json at ui.perfetto.dev).
obs-smoke:
	@mkdir -p $(SMOKE)
	$(GO) run ./cmd/uts -tree H-TINY -ranks 32 -seed 3 \
		-trace $(SMOKE)/smoke.jsonl -chrome $(SMOKE)/smoke.chrome.json \
		-manifest $(SMOKE)/smoke.manifest.json
	$(GO) run ./cmd/tracetool -in $(SMOKE)/smoke.jsonl
	$(GO) run ./cmd/tracetool -in $(SMOKE)/smoke.jsonl -format json > $(SMOKE)/smoke.report.json
	$(GO) run ./cmd/obscheck $(SMOKE)/smoke.jsonl $(SMOKE)/smoke.chrome.json \
		$(SMOKE)/smoke.report.json $(SMOKE)/smoke.manifest.json

# causal-smoke runs the causal analyses (idle-time blame, critical
# path, work lineage) over the obs-smoke trace and archives the blame
# report next to the Perfetto trace. The non-empty check catches a
# silently broken pipeline.
causal-smoke: obs-smoke
	$(GO) run ./cmd/tracetool -in $(SMOKE)/smoke.jsonl \
		-blame -critical -lineage > $(SMOKE)/smoke.blame.txt
	@grep -q "idle-time blame" $(SMOKE)/smoke.blame.txt || \
		{ echo "causal-smoke: blame report missing from smoke.blame.txt"; exit 1; }
	@grep -q "critical path" $(SMOKE)/smoke.blame.txt || \
		{ echo "causal-smoke: critical path missing from smoke.blame.txt"; exit 1; }
	@echo "causal-smoke: wrote $(SMOKE)/smoke.blame.txt"

# chaos-smoke drives the fault-injection subsystem end to end: a tiny
# crash+straggler run through cmd/uts must terminate completely,
# report nonzero recovery activity, and replay byte-identically (the
# fault schedule is part of the seeded state). The chaos degradation
# table (harness experiment "chaos") lands in $(ARTIFACTS)/ alongside
# the observability artifacts; its shape checks gate the exit status.
CHAOS_RUN = $(GO) run ./cmd/uts -tree T3 -ranks 16 -seed 7 \
	-crash 3@40us,11@90us -straggler 5@3x2

chaos-smoke:
	@mkdir -p $(SMOKE)
	@rm -f $(ARTIFACTS)/smoke.* $(ARTIFACTS)/chaos.*  # pre-PR-7 top-level strays
	$(CHAOS_RUN) > $(SMOKE)/chaos.txt
	@$(CHAOS_RUN) | cmp -s - $(SMOKE)/chaos.txt || \
		{ echo "chaos-smoke: faulted run is not replay-identical"; exit 1; }
	@grep -q "crashed ranks:   2" $(SMOKE)/chaos.txt || \
		{ echo "chaos-smoke: expected 2 crashed ranks"; cat $(SMOKE)/chaos.txt; exit 1; }
	@grep -q "recoveries:" $(SMOKE)/chaos.txt || \
		{ echo "chaos-smoke: no recovery episodes recorded"; cat $(SMOKE)/chaos.txt; exit 1; }
	@if grep -q "WARNING: premature" $(SMOKE)/chaos.txt; then \
		echo "chaos-smoke: premature termination under faults"; exit 1; fi
	$(GO) run ./cmd/experiments -run chaos -scale quick -o $(SMOKE)/chaos.table.txt
	@echo "chaos-smoke: wrote $(SMOKE)/chaos.txt and chaos.table.txt"

# Hot-path benchmarks of the simulation substrate (event kernel,
# messaging, latency lookup, UTS hashing), exported as a JSON artifact
# for archiving and cross-commit comparison. BENCHTIME=1x gives the
# CI smoke variant below; default is a real measurement.
BENCHTIME ?= 1s
BENCH_PKGS = ./internal/sim ./internal/sim/par ./internal/comm ./internal/topology ./internal/uts ./internal/fault ./internal/obs/parprof ./internal/serve .
BENCH_NAMES = BenchmarkKernelHotPath|BenchmarkShardedKernel|BenchmarkCommSend|BenchmarkLatencyLookup|BenchmarkUTSChildGen|BenchmarkFaultInjection|BenchmarkWindowLedger|BenchmarkServeArrivals
BENCH_REQUIRE = KernelHotPath,ShardedKernel/shards=1,ShardedKernel/shards=2,ShardedKernel/shards=4,ShardedKernel/shards=8,CommSend,LatencyLookup,UTSChildGen,FaultInjection/nil-plan,FaultInjection/crashes,FaultInjection/lossy,WindowLedger,ServeArrivals
BENCH_RUN = $(GO) test -run '^$$' -bench '$(BENCH_NAMES)' -benchmem \
	-benchtime $(BENCHTIME) $(BENCH_PKGS)

# bench-json regenerates the committed baseline at the repo root; run it
# (at the default real BENCHTIME) and commit BENCH_sim.json when a
# benchmark is added or its allocation profile deliberately changes.
bench-json:
	$(BENCH_RUN) | $(GO) run ./cmd/benchjson -require $(BENCH_REQUIRE) -out BENCH_sim.json
	@echo "bench-json: wrote BENCH_sim.json (commit it to rebaseline)"

# bench-smoke is the CI gate: a short run of every hot-path benchmark,
# the alloc-gate tests, and a tolerance-band comparison of the fresh
# results against the committed BENCH_sim.json — the same comparator
# the matrix gate uses (allocs near-exact, bytes banded, wall time
# ignored). 100 iterations, not 1: allocs/op only matches the
# steady-state baseline once one-time warmup allocations amortize.
bench-smoke: BENCHTIME = 100x
bench-smoke:
	$(GO) test -run 'AllocFree' -count=1 $(BENCH_PKGS)
	@mkdir -p $(ARTIFACTS)/bench
	$(BENCH_RUN) | $(GO) run ./cmd/benchjson -require $(BENCH_REQUIRE) \
		-out $(ARTIFACTS)/bench/BENCH_sim.json -baseline BENCH_sim.json

# serve-smoke drives the open-system serving layer end to end: a
# fixed-seed two-tenant serving run through cmd/uts must drain every
# admitted job, book a consistent admission ledger (arrived = admitted
# + rejected), and replay byte-identically — the arrival schedule is
# compiled from (spec, seed) before the simulation starts, so any
# divergence is a determinism leak. The goodput/fairness saturation
# table (harness experiment "serving") lands in $(SMOKE)/; its shape
# checks gate the exit status.
SERVE_RUN = $(GO) run ./cmd/uts -tree T3 -ranks 16 -seed 7 -selector Tofu \
	-serve -tenants 2 -arrivals poisson:2ms,gamma:4ms:2 -horizon 40ms

serve-smoke:
	@mkdir -p $(SMOKE)
	$(SERVE_RUN) > $(SMOKE)/serve.txt
	@$(SERVE_RUN) | cmp -s - $(SMOKE)/serve.txt || \
		{ echo "serve-smoke: serving run is not replay-identical"; exit 1; }
	@grep -q "open-system serving:" $(SMOKE)/serve.txt || \
		{ echo "serve-smoke: serving report section missing"; cat $(SMOKE)/serve.txt; exit 1; }
	@awk '/jobs:/ { seen = 1; \
		if ($$2 + 0 != $$5 + $$8) { print "serve-smoke: admission ledger broken: " $$0; bad = 1 }; \
		if ($$10 + 0 != $$5 + 0) { print "serve-smoke: undrained jobs: " $$0; bad = 1 } } \
		END { if (!seen) { print "serve-smoke: no jobs line in report"; bad = 1 }; exit bad }' \
		$(SMOKE)/serve.txt
	$(GO) run ./cmd/experiments -run serving -scale quick -o $(SMOKE)/serve.table.txt
	@echo "serve-smoke: wrote $(SMOKE)/serve.txt and serve.table.txt"

# matrix-smoke is the cross-run regression gate: the scenario matrix
# (tree × selector × ranks × fault plan) runs at quick scale, writes one
# run manifest per cell to $(ARTIFACTS)/runs/latest, and compares every
# cell against the committed baseline ledger in artifacts/runs/baseline
# with per-metric tolerance bands. Regressed cells fail the build and
# get a causal attribution report next to their manifests (CI uploads
# them). `make matrix-smoke PERTURB=3` proves the gate trips.
MATRIX_SCALE ?= quick
PERTURB ?= 0
matrix-smoke:
	$(GO) run ./cmd/experiments -matrix -scale $(MATRIX_SCALE) -perturb $(PERTURB) \
		-matrix-out $(ARTIFACTS)/runs/latest -baseline artifacts/runs/baseline

# matrix-baseline regenerates the committed golden ledger. Rebaseline
# workflow: run this after a deliberate behaviour change, review the
# manifest diffs (`git diff artifacts/runs/baseline`), and commit.
matrix-baseline:
	$(GO) run ./cmd/experiments -matrix -scale $(MATRIX_SCALE) -matrix-out artifacts/runs/baseline
	@echo "matrix-baseline: regenerated artifacts/runs/baseline — review the diff and commit"

# par-smoke is the sharded-kernel determinism gate: the same Fig-9-style
# run (Tofu selection, 1/N placement) executed at 1, 2, 4 and 8 shards
# must print byte-identical results — every output of the run is virtual,
# so any byte of divergence means the window protocol leaked host
# scheduling into the simulation. Wall-clock per shard count lands in the
# scaling-table artifact; on multi-core runners it shows the speedup,
# on single-core CI it documents the coordination overhead.
PAR_TREE ?= H-SMALL
PAR_RANKS ?= 2048
PAR_SHARDS ?= 1 2 4 8
PAR_RUN = $(GO) run ./cmd/uts -tree $(PAR_TREE) -ranks $(PAR_RANKS) -chunk 4 -selector Tofu -seed 5
par-smoke:
	@mkdir -p $(SMOKE)
	$(PAR_RUN) -shards 1 > $(SMOKE)/par.txt
	@echo "# shards wall_seconds ($(PAR_TREE), $(PAR_RANKS) ranks, Tofu)" > $(SMOKE)/par.scaling.txt
	@for s in $(PAR_SHARDS); do \
		start=$$(date +%s.%N); \
		$(PAR_RUN) -shards $$s > $(SMOKE)/par.$$s.txt || exit 1; \
		end=$$(date +%s.%N); \
		echo "$$s $$(echo "$$end $$start" | awk '{printf "%.2f", $$1-$$2}')" >> $(SMOKE)/par.scaling.txt; \
		cmp -s $(SMOKE)/par.$$s.txt $(SMOKE)/par.txt || \
			{ echo "par-smoke: shards=$$s diverged from sequential"; exit 1; }; \
		rm -f $(SMOKE)/par.$$s.txt; \
	done
	@cat $(SMOKE)/par.scaling.txt
	@echo "par-smoke: shards {$(PAR_SHARDS)} byte-identical; scaling table in $(SMOKE)/par.scaling.txt"

# parprof-smoke is the window-profiling observer-freedom gate: the same
# sharded run with and without -parprof must emit byte-identical event
# traces (profiling reads barrier state, it never perturbs it), the
# profiled manifest's `par` section must validate under obscheck and
# print under tracetool -par, and the shards {1,2,4,8} scaling report
# must land as a JSON artifact for CI upload.
PARPROF_RUN = $(GO) run ./cmd/uts -tree T3 -ranks 16 -chunk 4 -selector Tofu -seed 5 -shards 4
parprof-smoke:
	@mkdir -p $(SMOKE)
	$(PARPROF_RUN) -trace $(SMOKE)/parprof.off.jsonl > /dev/null
	$(PARPROF_RUN) -parprof -trace $(SMOKE)/parprof.on.jsonl \
		-manifest $(SMOKE)/parprof.manifest.json \
		-parprof-json $(SMOKE)/parprof.scaling.json > $(SMOKE)/parprof.txt
	@cmp -s $(SMOKE)/parprof.on.jsonl $(SMOKE)/parprof.off.jsonl || \
		{ echo "parprof-smoke: profiling perturbed the event trace"; exit 1; }
	@rm -f $(SMOKE)/parprof.off.jsonl $(SMOKE)/parprof.on.jsonl
	@grep -q "parallel-kernel profile" $(SMOKE)/parprof.txt || \
		{ echo "parprof-smoke: window profile missing from output"; cat $(SMOKE)/parprof.txt; exit 1; }
	@grep -q "shard scaling report" $(SMOKE)/parprof.txt || \
		{ echo "parprof-smoke: scaling report missing from output"; cat $(SMOKE)/parprof.txt; exit 1; }
	$(GO) run ./cmd/tracetool -in $(SMOKE)/parprof.manifest.json -par
	$(GO) run ./cmd/obscheck $(SMOKE)/parprof.manifest.json
	@echo "parprof-smoke: observer-free; profile in $(SMOKE)/parprof.txt, scaling in $(SMOKE)/parprof.scaling.json"

check: build lint vet distwsvet test race par-smoke parprof-smoke causal-smoke chaos-smoke serve-smoke matrix-smoke
	@echo "check: all gates passed"

clean:
	$(GO) clean ./...
