// Package distws reproduces "Victim Selection and Distributed Work
// Stealing Performance: A Case Study" (Perarnau & Sato, IPDPS 2014) as
// a pure-Go system: a deterministic discrete-event simulation of
// MPI-style work stealing on a K Computer-like machine (6-D Tofu
// topology), the UTS benchmark, the paper's victim-selection
// strategies, its scheduling-latency metric, and an experiment harness
// regenerating every table and figure.
//
// Layout:
//
//   - internal/sim        — discrete-event kernel (virtual time)
//   - internal/topology   — 6-D mesh/torus machine, placements, latency
//   - internal/comm       — simulated message passing
//   - internal/uts        — the Unbalanced Tree Search workload
//   - internal/workstack  — chunked work stacks
//   - internal/victim     — victim-selection strategies
//   - internal/term       — distributed termination detection
//   - internal/trace      — activity traces (paper §III)
//   - internal/metrics    — occupancy, SL(x)/EL(x)
//   - internal/core       — the distributed work-stealing engine
//   - internal/harness    — experiments for every table and figure
//   - internal/rt         — real shared-memory work-stealing runtime
//   - cmd/uts, cmd/utsseq, cmd/experiments — tools
//   - examples/...        — runnable walkthroughs
//
// The benchmarks in bench_test.go regenerate each figure's data at
// quick scale; use cmd/experiments for the full reproduction.
package distws
