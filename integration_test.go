package distws

// Cross-module integration tests: each test drives a complete pipeline
// through multiple packages (engine -> trace -> serialization ->
// metrics, simulator vs real runtime, selectors across substrates).

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strconv"
	"testing"

	"distws/internal/core"
	"distws/internal/dag"
	"distws/internal/dagws"
	"distws/internal/metrics"
	"distws/internal/obs"
	"distws/internal/rt"
	"distws/internal/sim"
	"distws/internal/topology"
	"distws/internal/trace"
	"distws/internal/uts"
	"distws/internal/victim"
)

// TestPipelineTraceRoundTrip runs a traced simulation, serializes the
// trace to JSONL, reads it back, and verifies the derived metrics are
// identical — the full cmd/uts -> cmd/tracetool pipeline in-process.
func TestPipelineTraceRoundTrip(t *testing.T) {
	res, err := core.Run(core.Config{
		Tree:         uts.MustPreset("H-TINY").Params,
		Ranks:        32,
		ChunkSize:    4,
		Selector:     victim.NewDistanceSkewed,
		Steal:        core.StealHalf,
		Seed:         1,
		CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	a := metrics.Occupancy(res.Trace)
	b := metrics.Occupancy(back)
	if a.Wmax() != b.Wmax() || a.MeanOccupancy() != b.MeanOccupancy() {
		t.Fatal("metrics differ after serialization round trip")
	}
	slA, okA := a.StartingLatency(0.5)
	slB, okB := b.StartingLatency(0.5)
	if okA != okB || slA != slB {
		t.Fatal("SL differs after round trip")
	}
	sa, sb := metrics.Sessions(res.Trace), metrics.Sessions(back)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("session stats differ: %+v vs %+v", sa, sb)
	}
}

// TestPipelineEventAnalysisRoundTrip drives the observability pipeline
// end to end: a simulation with the protocol event log and a metrics
// registry, serialized to JSONL and read back, must yield identical
// steal-latency and traffic analyses, convert to non-trivial Chrome
// trace JSON, and export a Prometheus page carrying the same steal
// counts the engine reported.
func TestPipelineEventAnalysisRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := core.Run(core.Config{
		Tree:          uts.MustPreset("H-TINY").Params,
		Ranks:         32,
		ChunkSize:     4,
		Selector:      victim.NewDistanceSkewed,
		Steal:         core.StealHalf,
		Seed:          1,
		CollectEvents: true,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.TotalEvents() != res.Trace.TotalEvents() {
		t.Fatalf("event count changed in serialization: %d vs %d",
			back.TotalEvents(), res.Trace.TotalEvents())
	}

	origPairs, backPairs := obs.PairSteals(res.Trace), obs.PairSteals(back)
	if !reflect.DeepEqual(obs.StealLatency(origPairs), obs.StealLatency(backPairs)) {
		t.Fatal("steal-latency stats differ after round trip")
	}
	if !reflect.DeepEqual(obs.Traffic(res.Trace), obs.Traffic(back)) {
		t.Fatal("traffic matrix differs after round trip")
	}

	var chrome bytes.Buffer
	if err := obs.WriteChromeTrace(&chrome, back); err != nil {
		t.Fatal(err)
	}
	var page struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &page); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(page.TraceEvents) < int(back.TotalEvents())/2 {
		t.Fatalf("chrome trace suspiciously small: %d events for %d recorded",
			len(page.TraceEvents), back.TotalEvents())
	}

	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	want := []byte("sim_steal_success_total " + strconv.FormatUint(res.SuccessfulSteals, 10))
	if !bytes.Contains(prom.Bytes(), want) {
		t.Fatalf("prometheus page missing %q:\n%s", want, prom.String())
	}
}

// TestSimulatorAndRuntimeAgreeOnTree verifies that the discrete-event
// simulator and the real shared-memory runtime count exactly the same
// tree — two completely independent traversal engines as ground-truth
// cross-checks (plus the sequential enumerator as referee).
func TestSimulatorAndRuntimeAgreeOnTree(t *testing.T) {
	params := uts.MustPreset("H-TINY").Params
	seq, err := uts.CountSequential(params)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := core.Run(core.Config{
		Tree: params, Ranks: 16, ChunkSize: 4,
		Selector: victim.NewUniformRandom, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rtRes, err := rt.Run(rt.Config{Tree: params, Workers: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Nodes != seq.Nodes || rtRes.Nodes != seq.Nodes {
		t.Fatalf("engines disagree: seq %d, sim %d, rt %d", seq.Nodes, simRes.Nodes, rtRes.Nodes)
	}
	if simRes.Leaves != seq.Leaves || rtRes.Leaves != seq.Leaves {
		t.Fatalf("leaf counts disagree: seq %d, sim %d, rt %d", seq.Leaves, simRes.Leaves, rtRes.Leaves)
	}
	if simRes.MaxDepth != seq.MaxDepth || rtRes.MaxDepth != seq.MaxDepth {
		t.Fatalf("depths disagree")
	}
}

// TestEfficiencyEqualsMeanOccupancy checks the analytic identity tying
// the engine's efficiency to the trace-derived mean occupancy: busy
// time is exactly SequentialTime, so efficiency = busy/(N*T) =
// mean occupancy (up to the sub-nanosecond rounding of trace times).
func TestEfficiencyEqualsMeanOccupancy(t *testing.T) {
	res, err := core.Run(core.Config{
		Tree:         uts.MustPreset("H-TINY").Params,
		Ranks:        24,
		ChunkSize:    4,
		Selector:     victim.NewUniformRandom,
		Seed:         9,
		CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mo := metrics.Occupancy(res.Trace).MeanOccupancy()
	if math.Abs(mo-res.Efficiency) > 0.02 {
		t.Fatalf("mean occupancy %.4f vs efficiency %.4f", mo, res.Efficiency)
	}
}

// TestSkewCorrectionPreservesMetrics runs the paper's clock-skew
// methodology end to end: inject skew, correct it, and verify SL/EL
// survive exactly.
func TestSkewCorrectionPreservesMetrics(t *testing.T) {
	res, err := core.Run(core.Config{
		Tree:         uts.MustPreset("H-TINY").Params,
		Ranks:        16,
		ChunkSize:    4,
		Selector:     victim.NewRoundRobin,
		Seed:         11,
		CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	orig := metrics.Occupancy(res.Trace)
	skewed, offsets := res.Trace.InjectSkew(3, 2*sim.Microsecond)
	fixed := skewed.CorrectSkew(offsets)
	corr := metrics.Occupancy(fixed)
	for _, x := range []float64{0.25, 0.5, 0.75} {
		a, okA := orig.StartingLatency(x)
		b, okB := corr.StartingLatency(x)
		if okA != okB || a != b {
			t.Fatalf("SL(%v) not preserved: %v/%v vs %v/%v", x, a, okA, b, okB)
		}
	}
}

// TestVictimSelectorsAcrossSubstrates drives the same selector
// implementations through both the UTS engine and the DAG scheduler.
func TestVictimSelectorsAcrossSubstrates(t *testing.T) {
	g, err := dag.Generate(dag.Params{
		Seed: 2, Layers: 12, WidthMean: 8, EdgesPerTask: 1.5,
		LocalityWindow: 2, CostMean: 10 * sim.Microsecond, DataMean: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree := uts.MustPreset("H-TINY").Params
	for name, factory := range victim.Strategies {
		utsRes, err := core.Run(core.Config{
			Tree: tree, Ranks: 8, ChunkSize: 4, Selector: factory, Seed: 3,
		})
		if err != nil {
			t.Fatalf("uts/%s: %v", name, err)
		}
		dagRes, err := dagws.Run(dagws.Config{Graph: g, Ranks: 8, Selector: factory, Seed: 3})
		if err != nil {
			t.Fatalf("dag/%s: %v", name, err)
		}
		if utsRes.Premature || dagRes.Tasks != g.Len() {
			t.Fatalf("%s: incomplete execution on a substrate", name)
		}
	}
}

// TestPlacementAffectsLatencyButNotWork confirms the core invariant
// behind Figure 2's comparisons: rank placement changes timing, never
// the computation.
func TestPlacementAffectsLatencyButNotWork(t *testing.T) {
	var nodes []uint64
	var makespans []sim.Duration
	for _, pl := range []topology.Placement{topology.OnePerNode, topology.EightRoundRobin, topology.EightGrouped} {
		res, err := core.Run(core.Config{
			Tree: uts.MustPreset("H-TINY").Params, Ranks: 16, ChunkSize: 4,
			Placement: pl, Selector: victim.NewRoundRobin, Seed: 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, res.Nodes)
		makespans = append(makespans, res.Makespan)
	}
	if nodes[0] != nodes[1] || nodes[1] != nodes[2] {
		t.Fatalf("placements computed different trees: %v", nodes)
	}
	if makespans[0] == makespans[1] && makespans[1] == makespans[2] {
		t.Fatal("placements produced identical timing (latency model inert?)")
	}
}
