package distws

// One benchmark per table and figure of the paper, plus the ablations.
// Each bench regenerates its experiment's data at Quick scale and fails
// if a shape check regresses, so `go test -bench=.` doubles as a
// reproduction smoke of every figure. The Default/Full-scale data in
// EXPERIMENTS.md comes from cmd/experiments.

import (
	"testing"

	"distws/internal/core"
	"distws/internal/fault"
	"distws/internal/harness"
	"distws/internal/obs"
	"distws/internal/rt"
	"distws/internal/sim"
	"distws/internal/uts"
	"distws/internal/victim"
)

// benchExperiment runs a registered experiment b.N times at Quick scale.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(harness.Quick, 12345)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range rep.Checks {
			if !c.Pass {
				b.Fatalf("%s shape check failed: %s (%s)", id, c.Desc, c.Detail)
			}
		}
	}
}

func BenchmarkTableITreeGen(b *testing.B)            { benchExperiment(b, "table1") }
func BenchmarkFig02ReferenceEfficiency(b *testing.B) { benchExperiment(b, "fig02") }
func BenchmarkFig03ReferenceSpeedup(b *testing.B)    { benchExperiment(b, "fig03") }
func BenchmarkFig04LatencySmall(b *testing.B)        { benchExperiment(b, "fig04") }
func BenchmarkFig05LatencyLarge(b *testing.B)        { benchExperiment(b, "fig05") }
func BenchmarkFig06RandomSpeedup(b *testing.B)       { benchExperiment(b, "fig06") }
func BenchmarkFig07FailedSteals(b *testing.B)        { benchExperiment(b, "fig07") }
func BenchmarkFig08SkewedPDF(b *testing.B)           { benchExperiment(b, "fig08") }
func BenchmarkFig09TofuSpeedup(b *testing.B)         { benchExperiment(b, "fig09") }
func BenchmarkFig10Discovery(b *testing.B)           { benchExperiment(b, "fig10") }
func BenchmarkFig11HalfSpeedup(b *testing.B)         { benchExperiment(b, "fig11") }
func BenchmarkFig12StartLatency(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13EndLatency(b *testing.B)          { benchExperiment(b, "fig13") }
func BenchmarkFig14SearchTime(b *testing.B)          { benchExperiment(b, "fig14") }
func BenchmarkFig15FailedStealsHalf(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16Granularity(b *testing.B)         { benchExperiment(b, "fig16") }

func BenchmarkAblationChunkSize(b *testing.B)    { benchExperiment(b, "ablation-chunk") }
func BenchmarkAblationPollInterval(b *testing.B) { benchExperiment(b, "ablation-poll") }
func BenchmarkAblationSelectors(b *testing.B)    { benchExperiment(b, "ablation-selectors") }
func BenchmarkAblationTermination(b *testing.B)  { benchExperiment(b, "ablation-term") }
func BenchmarkAblationSkewExponent(b *testing.B) { benchExperiment(b, "ablation-skew") }
func BenchmarkAblationBackoff(b *testing.B)      { benchExperiment(b, "ablation-backoff") }
func BenchmarkAblationProtocol(b *testing.B)     { benchExperiment(b, "ablation-protocol") }
func BenchmarkAblationAborts(b *testing.B)       { benchExperiment(b, "ablation-aborts") }
func BenchmarkAblationJitter(b *testing.B)       { benchExperiment(b, "ablation-jitter") }
func BenchmarkExtensionDAG(b *testing.B)         { benchExperiment(b, "ext-dag") }
func BenchmarkChaos(b *testing.B)                { benchExperiment(b, "chaos") }

// BenchmarkSimulatorThroughput measures raw simulation speed: virtual
// events and tree nodes processed per wall second for one mid-size
// configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := core.Config{
		Tree:      uts.MustPreset("H-TINY").Params,
		Ranks:     64,
		Selector:  victim.NewDistanceSkewed,
		Steal:     core.StealHalf,
		ChunkSize: 4,
		Seed:      1,
	}
	b.ReportAllocs()
	var nodes uint64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		nodes += res.Nodes
	}
	b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
}

// BenchmarkObservability measures what instrumentation costs the
// simulator: the same run with recording off, with the activity trace,
// with the protocol event log, and with the metrics registry on top.
// The observer-effect test guarantees identical results across these;
// this bench quantifies the wall-clock price of each layer.
func BenchmarkObservability(b *testing.B) {
	base := core.Config{
		Tree:      uts.MustPreset("H-TINY").Params,
		Ranks:     64,
		Selector:  victim.NewDistanceSkewed,
		Steal:     core.StealHalf,
		ChunkSize: 4,
		Seed:      1,
	}
	variants := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"disabled", func(*core.Config) {}},
		{"trace", func(c *core.Config) { c.CollectTrace = true }},
		{"events", func(c *core.Config) { c.CollectEvents = true }},
		{"events+metrics", func(c *core.Config) {
			c.CollectEvents = true
			c.Metrics = obs.NewRegistry()
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := base
			v.mod(&cfg)
			b.ReportAllocs()
			var nodes uint64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				nodes += res.Nodes
			}
			b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
		})
	}
}

// BenchmarkFaultInjection measures what the fault subsystem costs the
// simulator. nil-plan is the zero-overhead fast path (no injector, no
// interposer — the golden test proves it is also bit-identical);
// crashes compiles an injector but needs no interposer; lossy
// interposes on every send for drop/dup draws plus timeout recovery.
func BenchmarkFaultInjection(b *testing.B) {
	base := core.Config{
		Tree:      uts.MustPreset("H-TINY").Params,
		Ranks:     64,
		Selector:  victim.NewDistanceSkewed,
		Steal:     core.StealHalf,
		ChunkSize: 4,
		Seed:      1,
	}
	// Crash times sit at ~15% and ~40% of the fault-free 2.16ms makespan.
	crashes := []fault.Crash{
		{Rank: 16, At: sim.Time(300 * sim.Microsecond)},
		{Rank: 48, At: sim.Time(800 * sim.Microsecond)},
	}
	variants := []struct {
		name string
		plan *fault.Plan
	}{
		{"nil-plan", nil},
		{"crashes", &fault.Plan{Seed: 1, Crashes: crashes,
			Stragglers: []fault.Straggler{{Rank: 8, Compute: 2}}}},
		{"lossy", &fault.Plan{Seed: 1, Crashes: crashes,
			Links: []fault.LinkFault{{From: fault.Wildcard, To: fault.Wildcard, Drop: 0.03, Dup: 0.02}}}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := base
			cfg.Faults = v.plan
			b.ReportAllocs()
			var nodes uint64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if v.plan != nil && res.Nodes+res.LostNodes != res.NodesGenerated {
					b.Fatalf("accounting broken: %d+%d != %d", res.Nodes, res.LostNodes, res.NodesGenerated)
				}
				nodes += res.Nodes
			}
			b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
		})
	}
}

// BenchmarkQueueDesigns compares the two shared-memory queue designs —
// the UTS chunked stack (mutex) and the Chase–Lev lock-free deque the
// paper's §VI cites — on the same workload.
func BenchmarkQueueDesigns(b *testing.B) {
	tree := uts.MustPreset("H-TINY").Params
	for _, q := range []rt.Queue{rt.Chunked, rt.ChaseLev} {
		b.Run(q.String(), func(b *testing.B) {
			b.ReportAllocs()
			var nodes uint64
			for i := 0; i < b.N; i++ {
				res, err := rt.Run(rt.Config{Tree: tree, Queue: q, Selector: rt.Random, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				nodes += res.Nodes
			}
			b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
		})
	}
}

// BenchmarkSharedMemoryRuntime measures the real goroutine runtime's
// wall-clock traversal rate on this machine.
func BenchmarkSharedMemoryRuntime(b *testing.B) {
	cfg := rt.Config{
		Tree:      uts.MustPreset("H-SMALL").Params,
		Selector:  rt.RingSkewed,
		StealHalf: true,
		Seed:      1,
	}
	b.ReportAllocs()
	var nodes uint64
	for i := 0; i < b.N; i++ {
		res, err := rt.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		nodes += res.Nodes
	}
	b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
}
