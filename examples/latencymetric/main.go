// Latency-metric walkthrough: reproduces the paper's §III methodology
// end to end. Runs a traced execution, computes the occupancy curve and
// the starting/ending latencies SL(x)/EL(x), exercises the clock-skew
// correction the paper applies to real traces, and writes the trace as
// JSON Lines for external tooling.
//
//	go run ./examples/latencymetric [-trace trace.jsonl]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"distws/internal/core"
	"distws/internal/metrics"
	"distws/internal/sim"
	"distws/internal/uts"
	"distws/internal/victim"
)

func main() {
	traceOut := flag.String("trace", "", "write the activity trace (JSONL) to this file")
	flag.Parse()

	res, err := core.Run(core.Config{
		Tree:         uts.MustPreset("H-SMALL").Params,
		Ranks:        128,
		Selector:     victim.NewRoundRobin,
		ChunkSize:    4,
		Seed:         3,
		CollectTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	curve := metrics.Occupancy(res.Trace)
	fmt.Printf("traced execution: %d ranks, makespan %v\n", res.Ranks, res.Makespan)
	fmt.Printf("max occupancy: %.1f%% (Wmax = %d workers)\n", curve.MaxOccupancy()*100, curve.Wmax())
	fmt.Printf("mean occupancy: %.1f%%\n\n", curve.MeanOccupancy()*100)

	fmt.Println("occupancy   SL (% runtime)   EL (% runtime)")
	for _, p := range curve.LatencyCurve(metrics.OccupancySamples(9, 0.9)) {
		if !p.Reached {
			fmt.Printf("   %3.0f%%        (never reached)\n", p.Occupancy*100)
			continue
		}
		fmt.Printf("   %3.0f%%        %6.2f           %6.2f\n", p.Occupancy*100, p.SL*100, p.EL*100)
	}

	// The paper corrects its traces for clock skew between nodes; a
	// simulator's clock is perfectly synchronized, so demonstrate the
	// machinery by injecting a known skew and undoing it.
	skewed, offsets := res.Trace.InjectSkew(99, 50*sim.Microsecond)
	fixed := skewed.CorrectSkew(offsets)
	slBefore, _ := metrics.Occupancy(skewed).StartingLatency(0.5)
	slAfter, _ := metrics.Occupancy(fixed).StartingLatency(0.5)
	slTrue, _ := curve.StartingLatency(0.5)
	fmt.Printf("\nclock-skew demo: SL(50%%) skewed=%.3f%% corrected=%.3f%% true=%.3f%%\n",
		slBefore*100, slAfter*100, slTrue*100)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Trace.WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%d sessions)\n", *traceOut, res.Trace.TotalSessions())
	}
}
