// Victim-selection comparison: the paper's headline experiment in one
// program. Runs the same workload under every victim-selection strategy
// and steal policy, over each of the paper's three rank placements, and
// prints a comparison table.
//
//	go run ./examples/victimselection [-ranks 256]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"distws/internal/core"
	"distws/internal/topology"
	"distws/internal/uts"
	"distws/internal/victim"
)

func main() {
	ranks := flag.Int("ranks", 256, "simulated MPI ranks")
	flag.Parse()

	tree := uts.MustPreset("H-SMALL").Params
	variants := []struct {
		name     string
		selector victim.Factory
		steal    core.StealPolicy
	}{
		{"Reference (round robin, steal one)", victim.NewRoundRobin, core.StealOne},
		{"Rand (uniform random, steal one)", victim.NewUniformRandom, core.StealOne},
		{"Tofu (distance skewed, steal one)", victim.NewDistanceSkewed, core.StealOne},
		{"Reference Half", victim.NewRoundRobin, core.StealHalf},
		{"Rand Half", victim.NewUniformRandom, core.StealHalf},
		{"Tofu Half (the paper's winner)", victim.NewDistanceSkewed, core.StealHalf},
	}
	placements := []topology.Placement{
		topology.OnePerNode, topology.EightRoundRobin, topology.EightGrouped,
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tplacement\tspeedup\tefficiency\tfailed steals\tmean search")
	for _, v := range variants {
		for _, pl := range placements {
			res, err := core.Run(core.Config{
				Tree:      tree,
				Ranks:     *ranks,
				Placement: pl,
				Selector:  v.selector,
				Steal:     v.steal,
				ChunkSize: 4,
				Seed:      7,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s\t%v\t%.1f\t%.3f\t%d\t%v\n",
				v.name, pl, res.Speedup, res.Efficiency, res.FailedSteals, res.MeanSearchTime)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
