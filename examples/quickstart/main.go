// Quickstart: simulate a distributed UTS traversal on a K Computer-like
// machine and print the headline numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"distws/internal/core"
	"distws/internal/uts"
	"distws/internal/victim"
)

func main() {
	// A ~900k-node unbalanced tree searched by 64 simulated MPI ranks,
	// one per compute node, stealing with the paper's distance-skewed
	// ("Tofu") victim selection and half-stealing.
	cfg := core.Config{
		Tree:      uts.MustPreset("H-SMALL").Params,
		Ranks:     64,
		Selector:  victim.NewDistanceSkewed,
		Steal:     core.StealHalf,
		ChunkSize: 4,
		Seed:      1,
	}
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("searched %d tree nodes on %d ranks\n", res.Nodes, res.Ranks)
	fmt.Printf("virtual makespan: %v (sequential: %v)\n", res.Makespan, res.SequentialTime)
	fmt.Printf("speedup: %.1fx, efficiency: %.0f%%\n", res.Speedup, res.Efficiency*100)
	fmt.Printf("steals: %d successful, %d failed\n", res.SuccessfulSteals, res.FailedSteals)

	// The same run with the reference round-robin selection, for
	// comparison. Only the selector changes.
	cfg.Selector = victim.NewRoundRobin
	cfg.Steal = core.StealOne
	ref, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreference (round-robin, steal-one): speedup %.1fx, %d failed steals\n",
		ref.Speedup, ref.FailedSteals)
	fmt.Printf("improvement from victim selection + half-stealing: %.0f%%\n",
		(float64(ref.Makespan)/float64(res.Makespan)-1)*100)
}
