// DAG scheduling: the paper's §VII future work, realized. Generates a
// random task graph with data dependencies (Cordeiro et al.-style
// layered DAG), schedules it with distributed work stealing, and shows
// how victim selection and edge-data size interact — "stealing a task
// can trigger massive communications".
//
//	go run ./examples/dagscheduling [-ranks 64] [-kib 256]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"distws/internal/dag"
	"distws/internal/dagws"
	"distws/internal/sim"
	"distws/internal/victim"
)

func main() {
	ranks := flag.Int("ranks", 64, "scheduler ranks")
	kib := flag.Int("kib", 256, "mean edge data size in KiB")
	flag.Parse()

	g, err := dag.Generate(dag.Params{
		Seed: 42, Layers: 40, WidthMean: 24, EdgesPerTask: 2,
		LocalityWindow: 2, CostMean: 20 * sim.Microsecond,
		DataMean: *kib << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task graph: %d tasks, total compute %v, critical path %v, %d MiB of edge data\n\n",
		g.Len(), g.TotalCost, g.CriticalPath(), g.TotalBytes>>20)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "selector\tmakespan\tspeedup\tdata fetched\tfetch stall\ttasks stolen")
	for _, s := range []struct {
		name string
		f    victim.Factory
	}{
		{"RoundRobin", victim.NewRoundRobin},
		{"Rand", victim.NewUniformRandom},
		{"Tofu (distance-skewed)", victim.NewDistanceSkewed},
	} {
		res, err := dagws.Run(dagws.Config{
			Graph: g, Ranks: *ranks,
			Selector: s.f, StealHalf: true, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%v\t%.1f\t%.2f GiB\t%v\t%d\n",
			s.name, res.Makespan, res.Speedup,
			float64(res.BytesFetched)/(1<<30), res.FetchTime, res.TasksStolen)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe lower bound with infinite ranks and free communication is the critical path above;")
	fmt.Println("rerun with -kib 1 and -kib 1024 to see the bandwidth sensitivity the paper predicts.")
}
