// Shared-memory traversal: runs UTS on real goroutines with the rt
// work-stealing runtime and compares victim-selection strategies by
// wall-clock time on this machine's CPUs.
//
//	go run ./examples/sharedmemory [-tree H-SMALL] [-obs :6060]
//
// With -obs, the rt runtime feeds a live metrics registry (steal
// counters, wall-clock work-acquisition latency, the worker probe
// matrix) served as Prometheus text on /metrics, alongside /debug/vars
// and /debug/pprof/ — scrape mid-run to watch the steal series move.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"

	"distws/internal/obs"
	"distws/internal/rt"
	"distws/internal/uts"
)

func main() {
	treeName := flag.String("tree", "H-SMALL", "tree preset")
	obsAddr := flag.String("obs", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address")
	flag.Parse()

	info, ok := uts.Preset(*treeName)
	if !ok {
		log.Fatalf("unknown preset %q (known: %v)", *treeName, uts.PresetNames())
	}

	var reg *obs.Registry
	if *obsAddr != "" {
		reg = obs.NewRegistry()
		go func() {
			if err := http.ListenAndServe(*obsAddr, obs.Handler(reg)); err != nil {
				log.Printf("obs server: %v", err)
			}
		}()
		fmt.Printf("observability: http://%s/metrics\n\n", *obsAddr)
	}

	serial, err := rt.Run(rt.Config{Tree: info.Params, Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree %s: %d nodes, depth %d\n", info.Name, serial.Nodes, serial.MaxDepth)
	fmt.Printf("serial traversal: %v (%.2fM nodes/s)\n\n",
		serial.Elapsed, float64(serial.Nodes)/serial.Elapsed.Seconds()/1e6)

	workers := runtime.GOMAXPROCS(0)
	for _, sel := range []rt.SelectorKind{rt.RoundRobin, rt.Random, rt.RingSkewed} {
		res, err := rt.Run(rt.Config{
			Tree:      info.Params,
			Workers:   workers,
			Selector:  sel,
			StealHalf: true,
			Seed:      1,
			Metrics:   reg,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Nodes != serial.Nodes {
			log.Fatalf("%v: counted %d nodes, serial found %d", sel, res.Nodes, serial.Nodes)
		}
		fmt.Printf("%-12v %d workers: %v (speedup %.2fx, %d steals, %d failed)\n",
			sel, workers, res.Elapsed,
			serial.Elapsed.Seconds()/res.Elapsed.Seconds(), res.Steals, res.FailedSteals)
	}
}
